// The Event model: the single record type that flows through the entire
// Horus pipeline — from adapters, through the queues and both happens-before
// encoders, into the graph store.
//
// An Event carries:
//  - identity: a globally unique EventId;
//  - locality: the ThreadRef of the thread that executed it, plus the
//    logical "service" name used for human-facing filtering (the paper's
//    queries filter on `host: 'Launcher'`, which is the service name);
//  - a physical timestamp observed on the *local* host clock — only
//    meaningful for ordering events of the same process timeline;
//  - a type-specific payload (network byte ranges, child-thread identity,
//    or a log message).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <variant>

#include "common/ids.h"
#include "common/json.h"
#include "common/sim_clock.h"
#include "event/event_type.h"

namespace horus {

/// Payload of SND/RCV/CONNECT/ACCEPT events.
///
/// For SND and RCV, [offset, offset+size) is the byte range of the channel's
/// stream that this event transferred. Matching SND byte ranges to RCV byte
/// ranges is how the inter-process encoder pairs one send with the possibly
/// *multiple partial receives* that consumed it (the paper observes the
/// SND/RCV count asymmetry caused by differing buffer sizes).
struct NetPayload {
  ChannelId channel;
  std::uint64_t offset = 0;  ///< stream offset of the first byte (SND/RCV)
  std::uint64_t size = 0;    ///< number of bytes transferred (SND/RCV)

  [[nodiscard]] bool operator==(const NetPayload&) const = default;
};

/// Payload of CREATE/FORK/JOIN events: identity of the child thread/process.
struct ThreadPayload {
  ThreadRef child;

  [[nodiscard]] bool operator==(const ThreadPayload&) const = default;
};

/// Payload of LOG events.
struct LogPayload {
  std::string message;
  std::string logger;  ///< originating logger name (e.g. class name)

  [[nodiscard]] bool operator==(const LogPayload&) const = default;
};

/// Payload of FSYNC events.
struct FsyncPayload {
  std::string path;

  [[nodiscard]] bool operator==(const FsyncPayload&) const = default;
};

struct Event {
  EventId id = kInvalidEventId;
  EventType type = EventType::kLog;
  ThreadRef thread;
  std::string service;  ///< logical component name (e.g. "Payment")
  TimeNs timestamp = 0;  ///< local-host observed physical time

  std::variant<std::monostate, NetPayload, ThreadPayload, LogPayload,
               FsyncPayload>
      payload;

  [[nodiscard]] bool operator==(const Event&) const = default;

  [[nodiscard]] const NetPayload* net() const noexcept {
    return std::get_if<NetPayload>(&payload);
  }
  [[nodiscard]] const ThreadPayload* child() const noexcept {
    return std::get_if<ThreadPayload>(&payload);
  }
  [[nodiscard]] const LogPayload* log() const noexcept {
    return std::get_if<LogPayload>(&payload);
  }
  [[nodiscard]] const FsyncPayload* fsync() const noexcept {
    return std::get_if<FsyncPayload>(&payload);
  }

  /// Serializes to the wire schema used by the queues.
  [[nodiscard]] Json to_json() const;

  /// Parses the wire schema; throws JsonError on malformed input.
  [[nodiscard]] static Event from_json(const Json& j);

  /// Short human-readable rendering for debugging/examples.
  [[nodiscard]] std::string to_string() const;
};

/// Consumer of a normalized event stream. Adapters push into one of these;
/// pipeline stages chain through them.
using EventSinkFn = std::function<void(Event)>;

/// Process-wide monotonically increasing EventId allocator.
///
/// Each producer (tracer, adapter) owns one allocator seeded with a disjoint
/// range so ids never collide across sources.
class EventIdAllocator {
 public:
  /// @param range_start first id handed out by this allocator
  explicit EventIdAllocator(std::uint64_t range_start = 0) noexcept
      : next_(range_start) {}

  [[nodiscard]] EventId next() noexcept {
    return static_cast<EventId>(next_++);
  }

  [[nodiscard]] std::uint64_t allocated_upto() const noexcept { return next_; }

 private:
  std::uint64_t next_;
};

}  // namespace horus
