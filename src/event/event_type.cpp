#include "event/event_type.h"

#include <array>

namespace horus {

namespace {
constexpr std::array<std::string_view, kNumEventTypes> kNames = {
    "LOG",  "SND",   "RCV", "CONNECT", "ACCEPT", "CREATE",
    "FORK", "START", "END", "JOIN",    "FSYNC",
};
}  // namespace

std::string_view to_string(EventType type) noexcept {
  return kNames[static_cast<std::size_t>(type)];
}

std::optional<EventType> event_type_from_string(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == name) return static_cast<EventType>(i);
  }
  return std::nullopt;
}

}  // namespace horus
