#include "event/event.h"

#include "common/string_util.h"

namespace horus {

namespace {

Json thread_to_json(const ThreadRef& t) {
  Json j = Json::object();
  j["host"] = t.host;
  j["pid"] = static_cast<std::int64_t>(t.pid);
  j["tid"] = static_cast<std::int64_t>(t.tid);
  return j;
}

ThreadRef thread_from_json(const Json& j) {
  return ThreadRef{j.at("host").as_string(),
                   static_cast<std::int32_t>(j.at("pid").as_int()),
                   static_cast<std::int32_t>(j.at("tid").as_int())};
}

Json addr_to_json(const SocketAddr& a) {
  Json j = Json::object();
  j["ip"] = a.ip;
  j["port"] = static_cast<std::int64_t>(a.port);
  return j;
}

SocketAddr addr_from_json(const Json& j) {
  return SocketAddr{j.at("ip").as_string(),
                    static_cast<std::uint16_t>(j.at("port").as_int())};
}

}  // namespace

Json Event::to_json() const {
  Json j = Json::object();
  j["id"] = static_cast<std::int64_t>(value_of(id));
  j["type"] = std::string(horus::to_string(type));
  j["thread"] = thread_to_json(thread);
  j["service"] = service;
  j["ts"] = timestamp;

  if (const auto* n = net()) {
    Json nj = Json::object();
    nj["src"] = addr_to_json(n->channel.src);
    nj["dst"] = addr_to_json(n->channel.dst);
    nj["offset"] = static_cast<std::int64_t>(n->offset);
    nj["size"] = static_cast<std::int64_t>(n->size);
    j["net"] = std::move(nj);
  } else if (const auto* c = child()) {
    j["child"] = thread_to_json(c->child);
  } else if (const auto* l = log()) {
    Json lj = Json::object();
    lj["message"] = l->message;
    lj["logger"] = l->logger;
    j["log"] = std::move(lj);
  } else if (const auto* f = fsync()) {
    Json fj = Json::object();
    fj["path"] = f->path;
    j["fsync"] = std::move(fj);
  }
  return j;
}

Event Event::from_json(const Json& j) {
  Event e;
  e.id = static_cast<EventId>(
      static_cast<std::uint64_t>(j.at("id").as_int()));
  const auto type = event_type_from_string(j.at("type").as_string());
  if (!type) {
    throw JsonError("event: unknown type '" + j.at("type").as_string() + "'");
  }
  e.type = *type;
  e.thread = thread_from_json(j.at("thread"));
  e.service = j.get_or("service", std::string{});
  e.timestamp = j.at("ts").as_int();

  if (j.contains("net")) {
    const Json& nj = j.at("net");
    NetPayload n;
    n.channel.src = addr_from_json(nj.at("src"));
    n.channel.dst = addr_from_json(nj.at("dst"));
    n.offset = static_cast<std::uint64_t>(nj.at("offset").as_int());
    n.size = static_cast<std::uint64_t>(nj.at("size").as_int());
    e.payload = n;
  } else if (j.contains("child")) {
    e.payload = ThreadPayload{thread_from_json(j.at("child"))};
  } else if (j.contains("log")) {
    const Json& lj = j.at("log");
    e.payload = LogPayload{lj.get_or("message", std::string{}),
                           lj.get_or("logger", std::string{})};
  } else if (j.contains("fsync")) {
    e.payload = FsyncPayload{j.at("fsync").get_or("path", std::string{})};
  }
  return e;
}

std::string Event::to_string() const {
  std::string out = str_format(
      "#%llu %s %s@%s t=%s", static_cast<unsigned long long>(value_of(id)),
      std::string(horus::to_string(type)).c_str(), thread.to_string().c_str(),
      service.c_str(), format_time_ns(timestamp).c_str());
  if (const auto* n = net()) {
    out += str_format(" %s [%llu,+%llu)", n->channel.to_string().c_str(),
                      static_cast<unsigned long long>(n->offset),
                      static_cast<unsigned long long>(n->size));
  } else if (const auto* c = child()) {
    out += " child=" + c->child.to_string();
  } else if (const auto* l = log()) {
    out += " \"" + l->message + "\"";
  } else if (const auto* f = fsync()) {
    out += " path=" + f->path;
  }
  return out;
}

}  // namespace horus
