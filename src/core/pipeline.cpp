#include "core/pipeline.h"

#include "common/json.h"

namespace horus {

using Clock = std::chrono::steady_clock;

std::string inter_routing_key(const Event& event) {
  switch (event.type) {
    case EventType::kSnd:
    case EventType::kRcv:
    case EventType::kConnect:
    case EventType::kAccept:
      if (const auto* n = event.net()) return n->channel.to_string();
      break;
    case EventType::kCreate:
    case EventType::kFork:
    case EventType::kJoin:
      if (const auto* c = event.child()) return c->child.to_string();
      break;
    case EventType::kStart:
    case EventType::kEnd:
      return event.thread.to_string();
    case EventType::kLog:
    case EventType::kFsync:
      break;
  }
  return event.thread.to_string();
}

Pipeline::Pipeline(queue::Broker& broker, ExecutionGraph& graph,
                   PipelineOptions options)
    : broker_(broker), graph_(graph), options_(options) {
  broker_.create_topic(options_.sources_topic, options_.partitions);
  broker_.create_topic(options_.timeline_topic, options_.partitions);
}

Pipeline::~Pipeline() {
  if (running_.load()) stop();
}

void Pipeline::start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false);

  // Static round-robin partition assignment per stage.
  auto assignment = [this](int workers, int worker) {
    std::vector<int> parts;
    for (int p = worker; p < options_.partitions; p += workers) {
      parts.push_back(p);
    }
    return parts;
  };
  for (int i = 0; i < options_.intra_workers; ++i) {
    workers_.emplace_back([this, i, parts = assignment(options_.intra_workers,
                                                       i)] {
      intra_worker(i, parts);
    });
  }
  for (int i = 0; i < options_.inter_workers; ++i) {
    workers_.emplace_back([this, i, parts = assignment(options_.inter_workers,
                                                       i)] {
      inter_worker(i, parts);
    });
  }
}

void Pipeline::publish(const Event& event) {
  broker_.topic(options_.sources_topic)
      .produce(timeline_key(event, options_.granularity),
               event.to_json().dump());
  published_.fetch_add(1, std::memory_order_relaxed);
}

EventSinkFn Pipeline::sink() {
  return [this](Event event) { publish(event); };
}

void Pipeline::intra_worker(int index, std::vector<int> partitions) {
  queue::Consumer consumer(broker_, "horus-intra-" + std::to_string(index),
                           options_.sources_topic, std::move(partitions));
  queue::Topic& downstream = broker_.topic(options_.timeline_topic);

  IntraProcessEncoder encoder(
      graph_,
      [this, &downstream](Event event) {
        const std::string key = inter_routing_key(event);
        downstream.produce(key, event.to_json().dump());
        intra_forwarded_.fetch_add(1, std::memory_order_relaxed);
      },
      IntraProcessEncoder::Options{options_.granularity});

  auto last_flush = Clock::now();
  const auto interval =
      std::chrono::milliseconds(options_.event_flush_interval_ms);

  while (true) {
    const auto batch = consumer.poll(options_.poll_batch, /*timeout_ms=*/5);
    for (const auto& msg : batch) {
      encoder.on_event(Event::from_json(Json::parse(msg.message.value)));
      intra_processed_.fetch_add(1, std::memory_order_relaxed);
    }
    const auto now = Clock::now();
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    if (now - last_flush >= interval || (stopping && batch.empty())) {
      encoder.flush();
      consumer.commit();
      last_flush = now;
      if (stopping && batch.empty() && encoder.pending() == 0) break;
    }
  }
}

void Pipeline::inter_worker(int index, std::vector<int> partitions) {
  queue::Consumer consumer(broker_, "horus-inter-" + std::to_string(index),
                           options_.timeline_topic, std::move(partitions));
  InterProcessEncoder encoder(graph_);

  auto last_flush = Clock::now();
  const auto interval =
      std::chrono::milliseconds(options_.relationship_flush_interval_ms);

  while (true) {
    const auto batch = consumer.poll(options_.poll_batch, /*timeout_ms=*/5);
    for (const auto& msg : batch) {
      encoder.on_event(Event::from_json(Json::parse(msg.message.value)));
      inter_processed_.fetch_add(1, std::memory_order_relaxed);
    }
    const auto now = Clock::now();
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    if (now - last_flush >= interval || (stopping && batch.empty())) {
      encoder.flush();
      consumer.commit();
      last_flush = now;
      if (stopping && batch.empty()) break;
    }
  }
}

void Pipeline::drain() {
  // The pipeline is drained when the intra stage has consumed everything
  // published, its flushes have stopped producing new downstream events
  // (duplicates are dropped, so forwarded <= published), and the inter
  // stage has consumed everything forwarded. Poll the counters until the
  // numbers are stable across a full flush interval.
  const auto settle = std::chrono::milliseconds(
      std::max(options_.event_flush_interval_ms,
               options_.relationship_flush_interval_ms) +
      10);
  while (true) {
    while (intra_processed_.load() < published_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const auto forwarded_before = intra_forwarded_.load();
    while (inter_processed_.load() < intra_forwarded_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // Wait a flush interval; if nothing moved, every stage is settled.
    std::this_thread::sleep_for(settle);
    if (intra_processed_.load() >= published_.load() &&
        intra_forwarded_.load() == forwarded_before &&
        inter_processed_.load() >= intra_forwarded_.load()) {
      break;
    }
  }
}

void Pipeline::stop() {
  if (!running_.load()) return;
  stop_requested_.store(true, std::memory_order_release);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  running_.store(false);
}

}  // namespace horus
