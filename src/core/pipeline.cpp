#include "core/pipeline.h"

#include <exception>
#include <filesystem>
#include <fstream>

#include "common/diag.h"
#include "common/json.h"
#include "core/validator.h"
#include "graph/segment.h"
#include "queue/fault.h"

namespace horus {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::string inter_routing_key(const Event& event) {
  switch (event.type) {
    case EventType::kSnd:
    case EventType::kRcv:
    case EventType::kConnect:
    case EventType::kAccept:
      if (const auto* n = event.net()) return n->channel.to_string();
      break;
    case EventType::kCreate:
    case EventType::kFork:
    case EventType::kJoin:
      if (const auto* c = event.child()) return c->child.to_string();
      break;
    case EventType::kStart:
    case EventType::kEnd:
      return event.thread.to_string();
    case EventType::kLog:
    case EventType::kFsync:
      break;
  }
  return event.thread.to_string();
}

namespace {

/// Atomically replaces `path` with the serialized pending events (write to
/// a temp file, then rename): a crash mid-write leaves the previous spill
/// intact, never a torn one.
void write_pending_wal(const std::string& path,
                       const std::vector<Event>& events) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("pipeline: cannot write WAL " + tmp);
    }
    for (const Event& event : events) {
      out << event.to_json().dump() << '\n';
    }
  }
  fs::rename(tmp, path);
}

/// Loads a pending-pair spill; a missing file is an empty spill (first
/// start), a corrupt line is skipped with a warning (it only widens the
/// lost-edge window back to the in-memory behaviour for that one event).
std::vector<Event> read_pending_wal(const std::string& path) {
  std::vector<Event> events;
  std::ifstream in(path);
  if (!in) return events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      events.push_back(Event::from_json(Json::parse(line)));
    } catch (const std::exception& e) {
      diag(DiagLevel::kWarn, "pipeline",
           "skipping corrupt WAL line in " + path + ": " + e.what());
    }
  }
  return events;
}

/// Tracks one worker's contribution to a shared pending gauge via deltas,
/// and retracts it on scope exit — so a crashed worker (whose encoder, and
/// with it the buffered state, is destroyed) does not leave the gauge
/// permanently inflated.
struct PendingGuard {
  obs::Gauge* gauge;
  std::int64_t seen = 0;
  void update(std::int64_t now) {
    gauge->add(now - seen);
    seen = now;
  }
  ~PendingGuard() { gauge->sub(seen); }
};

}  // namespace

template <typename Fn>
auto Pipeline::backoff_retry(const char* what, Fn&& op) -> decltype(op()) {
  int delay_ms = options_.retry_backoff_base_ms;
  for (;;) {
    try {
      return op();
    } catch (const queue::TransientFault& e) {
      // Only transient broker faults are retryable; InjectedCrash and real
      // errors propagate to the worker's recovery loop / the caller.
      retried_->inc();
      diag(DiagLevel::kDebug, "pipeline",
           std::string(what) + " failed transiently (" + e.what() +
               "), retrying in " + std::to_string(delay_ms) + "ms");
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      delay_ms = std::min(delay_ms * 2, options_.retry_backoff_cap_ms);
    }
  }
}

namespace {
/// Process-unique pipeline id: tests assert exact per-instance counts, so
/// every Pipeline gets its own registry children under pipeline="<id>".
std::string next_pipeline_instance() {
  static std::atomic<std::uint64_t> counter{0};
  return std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}
}  // namespace

Pipeline::Pipeline(queue::Broker& broker, ExecutionGraph& graph,
                   PipelineOptions options)
    : broker_(broker),
      graph_(graph),
      options_(std::move(options)),
      instance_(next_pipeline_instance()) {
  obs::Registry& registry = obs::Registry::global();
  obs::Family<obs::Counter>& events = registry.counters(
      "horus_pipeline_events_total", "Events crossing each pipeline stage");
  published_ = &events.with({{"pipeline", instance_}, {"stage", "published"}});
  intra_processed_ =
      &events.with({{"pipeline", instance_}, {"stage", "intra"}});
  intra_forwarded_ =
      &events.with({{"pipeline", instance_}, {"stage", "intra_forwarded"}});
  inter_processed_ =
      &events.with({{"pipeline", instance_}, {"stage", "inter"}});
  inter_edges_ =
      &events.with({{"pipeline", instance_}, {"stage", "inter_edges"}});
  retried_ = &registry.counter("horus_pipeline_retries_total",
                               "Retries against transient broker faults",
                               {{"pipeline", instance_}});
  dead_lettered_ = &registry.counter("horus_pipeline_dead_letter_total",
                                     "Messages diverted to the DLQ",
                                     {{"pipeline", instance_}});
  recoveries_ = &registry.counter("horus_pipeline_recoveries_total",
                                  "Worker crash-recovery cycles",
                                  {{"pipeline", instance_}});
  intra_duplicates_ = &registry.counter(
      "horus_pipeline_duplicates_total",
      "Replayed/duplicated deliveries dropped by the intra stage",
      {{"pipeline", instance_}});
  wal_spills_ = &registry.counter("horus_pipeline_wal_spills_total",
                                  "Pending-pair WAL rewrites (inter stage)",
                                  {{"pipeline", instance_}});
  wal_recovered_ = &registry.counter(
      "horus_pipeline_wal_recovered_total",
      "Events re-fed from the pending-pair WAL after a restart",
      {{"pipeline", instance_}});
  obs::Family<obs::Gauge>& pending = registry.gauges(
      "horus_encoder_pending", "Buffered/unmatched state per encoder stage");
  intra_pending_ =
      &pending.with({{"pipeline", instance_}, {"stage", "intra"}});
  inter_pending_ =
      &pending.with({{"pipeline", instance_}, {"stage", "inter"}});
  inter_deferred_ =
      &pending.with({{"pipeline", instance_}, {"stage", "inter-deferred"}});
  obs::Family<obs::Histogram>& flush = registry.histograms(
      "horus_encoder_flush_seconds", "Encoder flush latency per stage");
  intra_flush_seconds_ = &flush.with({{"stage", "intra"}});
  inter_flush_seconds_ = &flush.with({{"stage", "inter"}});

  broker_.create_topic(options_.sources_topic, options_.partitions);
  broker_.create_topic(options_.timeline_topic, options_.partitions);
  broker_.create_topic(options_.dlq_topic, 1);
  if (!options_.wal_dir.empty()) {
    fs::create_directories(options_.wal_dir);
  }
}

Pipeline::~Pipeline() { stop(); }

void Pipeline::start() {
  const std::lock_guard lifecycle_lock(lifecycle_mutex_);
  if (running_.exchange(true)) return;
  stop_requested_.store(false);
  kill_requested_.store(false);

  // Static round-robin partition assignment per stage.
  auto assignment = [this](int workers, int worker) {
    std::vector<int> parts;
    for (int p = worker; p < options_.partitions; p += workers) {
      parts.push_back(p);
    }
    return parts;
  };
  ThreadPool& pool = ThreadPool::shared();
  for (int i = 0; i < options_.intra_workers; ++i) {
    workers_.push_back(pool.spawn_service(
        [this, i, parts = assignment(options_.intra_workers, i)] {
          intra_worker(i, parts);
        }));
  }
  for (int i = 0; i < options_.inter_workers; ++i) {
    workers_.push_back(pool.spawn_service(
        [this, i, parts = assignment(options_.inter_workers, i)] {
          inter_worker(i, parts);
        }));
  }
}

void Pipeline::publish(const Event& event) {
  backoff_retry("publish", [&] {
    broker_.topic(options_.sources_topic)
        .produce(timeline_key(event, options_.granularity),
                 event.to_json().dump());
  });
  published_->inc();
}

EventSinkFn Pipeline::sink() {
  return [this](Event event) { publish(event); };
}

std::function<void(const std::string&, const std::string&)>
Pipeline::dead_letter_sink() {
  return [this](const std::string& raw, const std::string& error) {
    dead_letter("adapter", raw, error);
  };
}

void Pipeline::dead_letter(const std::string& stage,
                           const std::string& payload,
                           const std::string& error) {
  Json entry = Json::object();
  entry["stage"] = stage;
  entry["error"] = error;
  entry["payload"] = payload;
  backoff_retry("dead-letter produce", [&] {
    broker_.topic(options_.dlq_topic).produce(stage, entry.dump());
  });
  dead_lettered_->inc();
  diag(DiagLevel::kWarn, "pipeline",
       "dead-lettered " + stage + " message: " + error);
}

std::string Pipeline::wal_path(int index) const {
  return options_.wal_dir + "/inter-" + std::to_string(index) + ".wal";
}

// Worker threads: each is a crash-recovery loop around the actual stage
// body. An injected crash kills the consumer and encoder; the replacement
// resumes from the committed offsets (and, for the inter stage, from the
// pending-pair WAL), exactly like a supervisor restarting a died worker
// process.
void Pipeline::intra_worker(int index, std::vector<int> partitions) {
  for (;;) {
    try {
      run_intra(index, partitions);
      return;
    } catch (const queue::InjectedCrash& e) {
      recoveries_->inc();
      diag(DiagLevel::kWarn, "pipeline",
           "intra worker " + std::to_string(index) + " crashed (" + e.what() +
               "), restarting");
    }
  }
}

void Pipeline::inter_worker(int index, std::vector<int> partitions) {
  for (;;) {
    try {
      run_inter(index, partitions);
      return;
    } catch (const queue::InjectedCrash& e) {
      recoveries_->inc();
      diag(DiagLevel::kWarn, "pipeline",
           "inter worker " + std::to_string(index) + " crashed (" + e.what() +
               "), restarting");
    }
  }
}

void Pipeline::run_intra(int index, const std::vector<int>& partitions) {
  queue::Consumer consumer(broker_, "horus-intra-" + std::to_string(index),
                           options_.sources_topic, partitions);
  queue::Topic& downstream = broker_.topic(options_.timeline_topic);

  IntraProcessEncoder encoder(
      graph_,
      [this, &downstream](Event event) {
        const std::string key = inter_routing_key(event);
        const std::string value = event.to_json().dump();
        backoff_retry("timeline produce", [&] {
          downstream.produce(key, value);
        });
        intra_forwarded_->inc();
      },
      IntraProcessEncoder::Options{options_.granularity});

  auto last_flush = Clock::now();
  const auto interval =
      std::chrono::milliseconds(options_.event_flush_interval_ms);
  std::uint64_t dup_seen = 0;
  PendingGuard pending_guard{intra_pending_};

  while (true) {
    const auto batch = backoff_retry("intra poll", [&] {
      return consumer.poll(options_.poll_batch, /*timeout_ms=*/5);
    });
    for (const auto& msg : batch) {
      Event event;
      try {
        event = Event::from_json(Json::parse(msg.message.value));
      } catch (const std::exception& e) {
        dead_letter("intra-decode", msg.message.value, e.what());
        continue;
      }
      if (auto reason = validate_event(event)) {
        dead_letter("intra-validate", msg.message.value, *reason);
        continue;
      }
      encoder.on_event(std::move(event));
      intra_processed_->inc();
    }
    const std::uint64_t dups = encoder.duplicates_dropped();
    intra_duplicates_->inc(dups - dup_seen);
    dup_seen = dups;

    if (kill_requested_.load(std::memory_order_acquire)) return;
    const auto now = Clock::now();
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    if (now - last_flush >= interval || (stopping && batch.empty())) {
      {
        // Shared hold across flush+commit: the checkpoint's unique hold on
        // this gate therefore only ever observes flushed == committed.
        const std::shared_lock gate(flush_gate_);
        {
          const obs::Timer timer(*intra_flush_seconds_);
          encoder.flush();
        }
        consumer.commit();
      }
      pending_guard.update(static_cast<std::int64_t>(encoder.pending()));
      notify_commit_progress();
      last_flush = now;
      if (stopping && batch.empty() && encoder.pending() == 0) break;
    }
  }
}

void Pipeline::run_inter(int index, const std::vector<int>& partitions) {
  queue::Consumer consumer(broker_, "horus-inter-" + std::to_string(index),
                           options_.timeline_topic, partitions);
  InterProcessEncoder encoder(graph_);

  const bool durable = !options_.wal_dir.empty();
  const std::string wal = durable ? wal_path(index) : std::string();
  if (durable) {
    encoder.set_spill_capture(true);
    // Rehydrate the pending-pair state the previous incarnation spilled at
    // its last commit; the queue window after that commit replays on top.
    std::vector<Event> recovered = read_pending_wal(wal);
    wal_recovered_->inc(recovered.size());
    for (Event& event : recovered) {
      encoder.on_event(std::move(event));
    }
  }

  PendingGuard pending_guard{inter_pending_};
  PendingGuard deferred_guard{inter_deferred_};
  std::uint64_t edges_seen = encoder.edges_flushed();

  // One commit point: everything consumed so far is flushed to the graph,
  // then the surviving pending state is spilled, then offsets commit. A
  // crash between any two steps re-runs from the previous commit; flushes
  // and edges are idempotent, so the replay is absorbed.
  auto commit_cycle = [&] {
    {
      // Shared hold across flush+WAL+commit (see run_intra): under the
      // checkpoint's unique hold, the WAL on disk and the committed offsets
      // describe exactly the same cut.
      const std::shared_lock gate(flush_gate_);
      {
        const obs::Timer timer(*inter_flush_seconds_);
        encoder.flush();
      }
      if (durable) {
        write_pending_wal(wal, encoder.snapshot_pending());
        wal_spills_->inc();
      }
      consumer.commit();
    }
    const std::uint64_t edges = encoder.edges_flushed();
    inter_edges_->inc(edges - edges_seen);
    edges_seen = edges;
    pending_guard.update(static_cast<std::int64_t>(encoder.pending()));
    deferred_guard.update(static_cast<std::int64_t>(encoder.buffered()));
    notify_commit_progress();
  };

  auto last_flush = Clock::now();
  const auto interval =
      std::chrono::milliseconds(options_.relationship_flush_interval_ms);

  while (true) {
    const auto batch = backoff_retry("inter poll", [&] {
      return consumer.poll(options_.poll_batch, /*timeout_ms=*/5);
    });
    for (const auto& msg : batch) {
      Event event;
      try {
        event = Event::from_json(Json::parse(msg.message.value));
      } catch (const std::exception& e) {
        dead_letter("inter-decode", msg.message.value, e.what());
        continue;
      }
      encoder.on_event(std::move(event));
      inter_processed_->inc();
    }
    if (kill_requested_.load(std::memory_order_acquire)) return;
    const auto now = Clock::now();
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    if (now - last_flush >= interval || (stopping && batch.empty())) {
      commit_cycle();
      last_flush = now;
      if (stopping && batch.empty()) break;
    }
  }
}

bool Pipeline::committed_through(const std::string& topic,
                                 const std::string& group_prefix,
                                 int workers) const {
  queue::Topic& t = broker_.topic(topic);
  for (int w = 0; w < workers; ++w) {
    const std::string group = group_prefix + std::to_string(w);
    for (int p = w; p < options_.partitions; p += workers) {
      if (broker_.committed_offset(group, topic, p) <
          t.partition(p).end_offset()) {
        return false;
      }
    }
  }
  return true;
}

bool Pipeline::all_committed() const {
  // Offsets alone are not enough after a restore: the inter stage may have
  // committed past pairs it matched but could not flush yet (nodes still
  // replaying) — those edges are part of "everything published".
  return committed_through(options_.sources_topic, "horus-intra-",
                           options_.intra_workers) &&
         committed_through(options_.timeline_topic, "horus-inter-",
                           options_.inter_workers) &&
         inter_deferred_->value() == 0;
}

std::string Pipeline::segment_report() const {
  // When the store is segmented, a stuck drain's diagnostic names each
  // shard's sealed/evicted/pending state — a worker wedged faulting a
  // segment back in shows up as its shard, not as a generic stall.
  const graph::SegmentManager* segments = graph_.store().segments();
  if (segments == nullptr) return "";
  return "; segment shards: " + segments->shard_report();
}

std::string Pipeline::stuck_partition_report() const {
  std::string out;
  auto scan = [&](const std::string& topic, const std::string& group_prefix,
                  int workers) {
    queue::Topic& t = broker_.topic(topic);
    for (int w = 0; w < workers; ++w) {
      const std::string group = group_prefix + std::to_string(w);
      for (int p = w; p < options_.partitions; p += workers) {
        const std::uint64_t committed =
            broker_.committed_offset(group, topic, p);
        const std::uint64_t end = t.partition(p).end_offset();
        if (committed < end) {
          out += " " + topic + "[" + std::to_string(p) + "] group=" + group +
                 " committed=" + std::to_string(committed) +
                 " end=" + std::to_string(end);
        }
      }
    }
  };
  scan(options_.sources_topic, "horus-intra-", options_.intra_workers);
  scan(options_.timeline_topic, "horus-inter-", options_.inter_workers);
  return out.empty() ? " (none)" : out;
}

void Pipeline::notify_commit_progress() {
  {
    // Empty critical section: pairs the notify with drain()'s predicate
    // check so a signal cannot slip between the check and the wait.
    const std::lock_guard lock(drain_mutex_);
  }
  drain_cv_.notify_all();
}

bool Pipeline::drain() {
  // Drained == every stage has consumed AND committed everything the broker
  // holds for it: first the sources topic (intra workers), then the
  // timeline topic (inter workers; the intra stage no longer produces into
  // it once the sources are committed through). Offsets are the ground
  // truth — processed-event counters are inflated by injected duplicates
  // and crash replays, committed offsets are not.
  //
  // Workers signal drain_cv_ after every offset commit, so this waits on
  // the condition variable instead of busy-polling; the 100 ms cap only
  // backstops progress made outside a commit (e.g. a never-started
  // pipeline, or commits that raced the predicate check).
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
  std::unique_lock lock(drain_mutex_);
  for (;;) {
    if (all_committed()) return true;
    const auto now = Clock::now();
    if (now >= deadline) {
      diag(DiagLevel::kError, "pipeline",
           "drain timed out after " +
               std::to_string(options_.drain_timeout_ms) +
               "ms; published=" + std::to_string(published_->value()) +
               " intra=" + std::to_string(intra_processed_->value()) +
               " forwarded=" + std::to_string(intra_forwarded_->value()) +
               " inter=" + std::to_string(inter_processed_->value()) +
               " retried=" + std::to_string(retried_->value()) +
               " dead-lettered=" + std::to_string(dead_lettered_->value()) +
               " recoveries=" + std::to_string(recoveries_->value()) +
               "; stuck partitions:" + stuck_partition_report() +
               segment_report());
      return false;
    }
    drain_cv_.wait_for(
        lock, std::min<Clock::duration>(deadline - now,
                                        std::chrono::milliseconds(100)));
  }
}

void Pipeline::stop() {
  // Exactly one caller may claim the shutdown (running_ exchange); the
  // lifecycle mutex additionally makes later callers — including the
  // destructor racing a concurrent stop() — wait until the claimant has
  // joined and cleared workers_, instead of returning while threads are
  // still being torn down.
  const std::lock_guard lifecycle_lock(lifecycle_mutex_);
  if (!running_.exchange(false)) return;
  stop_requested_.store(true, std::memory_order_release);
  for (ThreadPool::ServiceThread& worker : workers_) worker.join();
  workers_.clear();
}

void Pipeline::kill() {
  const std::lock_guard lifecycle_lock(lifecycle_mutex_);
  if (!running_.exchange(false)) return;
  // Order matters: workers check kill first, so setting it before stop
  // keeps a worker that just read stop_requested_ from running its final
  // flush+commit.
  kill_requested_.store(true, std::memory_order_release);
  stop_requested_.store(true, std::memory_order_release);
  for (ThreadPool::ServiceThread& worker : workers_) worker.join();
  workers_.clear();
}

std::uint64_t Pipeline::backlog() const {
  std::uint64_t total = 0;
  auto scan = [&](const std::string& topic, const std::string& group_prefix,
                  int workers) {
    queue::Topic& t = broker_.topic(topic);
    for (int w = 0; w < workers; ++w) {
      const std::string group = group_prefix + std::to_string(w);
      for (int p = w; p < options_.partitions; p += workers) {
        const std::uint64_t end = t.partition(p).end_offset();
        const std::uint64_t committed =
            broker_.committed_offset(group, topic, p);
        if (end > committed) total += end - committed;
      }
    }
  };
  scan(options_.sources_topic, "horus-intra-", options_.intra_workers);
  scan(options_.timeline_topic, "horus-inter-", options_.inter_workers);
  return total;
}

}  // namespace horus
