#include "core/pipeline.h"

#include <exception>
#include <filesystem>
#include <fstream>

#include "common/diag.h"
#include "common/json.h"
#include "core/validator.h"
#include "queue/fault.h"

namespace horus {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::string inter_routing_key(const Event& event) {
  switch (event.type) {
    case EventType::kSnd:
    case EventType::kRcv:
    case EventType::kConnect:
    case EventType::kAccept:
      if (const auto* n = event.net()) return n->channel.to_string();
      break;
    case EventType::kCreate:
    case EventType::kFork:
    case EventType::kJoin:
      if (const auto* c = event.child()) return c->child.to_string();
      break;
    case EventType::kStart:
    case EventType::kEnd:
      return event.thread.to_string();
    case EventType::kLog:
    case EventType::kFsync:
      break;
  }
  return event.thread.to_string();
}

namespace {

/// Atomically replaces `path` with the serialized pending events (write to
/// a temp file, then rename): a crash mid-write leaves the previous spill
/// intact, never a torn one.
void write_pending_wal(const std::string& path,
                       const std::vector<Event>& events) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("pipeline: cannot write WAL " + tmp);
    }
    for (const Event& event : events) {
      out << event.to_json().dump() << '\n';
    }
  }
  fs::rename(tmp, path);
}

/// Loads a pending-pair spill; a missing file is an empty spill (first
/// start), a corrupt line is skipped with a warning (it only widens the
/// lost-edge window back to the in-memory behaviour for that one event).
std::vector<Event> read_pending_wal(const std::string& path) {
  std::vector<Event> events;
  std::ifstream in(path);
  if (!in) return events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      events.push_back(Event::from_json(Json::parse(line)));
    } catch (const std::exception& e) {
      diag(DiagLevel::kWarn, "pipeline",
           "skipping corrupt WAL line in " + path + ": " + e.what());
    }
  }
  return events;
}

}  // namespace

template <typename Fn>
auto Pipeline::backoff_retry(const char* what, Fn&& op) -> decltype(op()) {
  int delay_ms = options_.retry_backoff_base_ms;
  for (;;) {
    try {
      return op();
    } catch (const queue::TransientFault& e) {
      // Only transient broker faults are retryable; InjectedCrash and real
      // errors propagate to the worker's recovery loop / the caller.
      retried_.fetch_add(1, std::memory_order_relaxed);
      diag(DiagLevel::kDebug, "pipeline",
           std::string(what) + " failed transiently (" + e.what() +
               "), retrying in " + std::to_string(delay_ms) + "ms");
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      delay_ms = std::min(delay_ms * 2, options_.retry_backoff_cap_ms);
    }
  }
}

Pipeline::Pipeline(queue::Broker& broker, ExecutionGraph& graph,
                   PipelineOptions options)
    : broker_(broker), graph_(graph), options_(std::move(options)) {
  broker_.create_topic(options_.sources_topic, options_.partitions);
  broker_.create_topic(options_.timeline_topic, options_.partitions);
  broker_.create_topic(options_.dlq_topic, 1);
  if (!options_.wal_dir.empty()) {
    fs::create_directories(options_.wal_dir);
  }
}

Pipeline::~Pipeline() {
  if (running_.load()) stop();
}

void Pipeline::start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false);

  // Static round-robin partition assignment per stage.
  auto assignment = [this](int workers, int worker) {
    std::vector<int> parts;
    for (int p = worker; p < options_.partitions; p += workers) {
      parts.push_back(p);
    }
    return parts;
  };
  ThreadPool& pool = ThreadPool::shared();
  for (int i = 0; i < options_.intra_workers; ++i) {
    workers_.push_back(pool.spawn_service(
        [this, i, parts = assignment(options_.intra_workers, i)] {
          intra_worker(i, parts);
        }));
  }
  for (int i = 0; i < options_.inter_workers; ++i) {
    workers_.push_back(pool.spawn_service(
        [this, i, parts = assignment(options_.inter_workers, i)] {
          inter_worker(i, parts);
        }));
  }
}

void Pipeline::publish(const Event& event) {
  backoff_retry("publish", [&] {
    broker_.topic(options_.sources_topic)
        .produce(timeline_key(event, options_.granularity),
                 event.to_json().dump());
  });
  published_.fetch_add(1, std::memory_order_relaxed);
}

EventSinkFn Pipeline::sink() {
  return [this](Event event) { publish(event); };
}

std::function<void(const std::string&, const std::string&)>
Pipeline::dead_letter_sink() {
  return [this](const std::string& raw, const std::string& error) {
    dead_letter("adapter", raw, error);
  };
}

void Pipeline::dead_letter(const std::string& stage,
                           const std::string& payload,
                           const std::string& error) {
  Json entry = Json::object();
  entry["stage"] = stage;
  entry["error"] = error;
  entry["payload"] = payload;
  backoff_retry("dead-letter produce", [&] {
    broker_.topic(options_.dlq_topic).produce(stage, entry.dump());
  });
  dead_lettered_.fetch_add(1, std::memory_order_relaxed);
  diag(DiagLevel::kWarn, "pipeline",
       "dead-lettered " + stage + " message: " + error);
}

std::string Pipeline::wal_path(int index) const {
  return options_.wal_dir + "/inter-" + std::to_string(index) + ".wal";
}

// Worker threads: each is a crash-recovery loop around the actual stage
// body. An injected crash kills the consumer and encoder; the replacement
// resumes from the committed offsets (and, for the inter stage, from the
// pending-pair WAL), exactly like a supervisor restarting a died worker
// process.
void Pipeline::intra_worker(int index, std::vector<int> partitions) {
  for (;;) {
    try {
      run_intra(index, partitions);
      return;
    } catch (const queue::InjectedCrash& e) {
      recoveries_.fetch_add(1, std::memory_order_relaxed);
      diag(DiagLevel::kWarn, "pipeline",
           "intra worker " + std::to_string(index) + " crashed (" + e.what() +
               "), restarting");
    }
  }
}

void Pipeline::inter_worker(int index, std::vector<int> partitions) {
  for (;;) {
    try {
      run_inter(index, partitions);
      return;
    } catch (const queue::InjectedCrash& e) {
      recoveries_.fetch_add(1, std::memory_order_relaxed);
      diag(DiagLevel::kWarn, "pipeline",
           "inter worker " + std::to_string(index) + " crashed (" + e.what() +
               "), restarting");
    }
  }
}

void Pipeline::run_intra(int index, const std::vector<int>& partitions) {
  queue::Consumer consumer(broker_, "horus-intra-" + std::to_string(index),
                           options_.sources_topic, partitions);
  queue::Topic& downstream = broker_.topic(options_.timeline_topic);

  IntraProcessEncoder encoder(
      graph_,
      [this, &downstream](Event event) {
        const std::string key = inter_routing_key(event);
        const std::string value = event.to_json().dump();
        backoff_retry("timeline produce", [&] {
          downstream.produce(key, value);
        });
        intra_forwarded_.fetch_add(1, std::memory_order_relaxed);
      },
      IntraProcessEncoder::Options{options_.granularity});

  auto last_flush = Clock::now();
  const auto interval =
      std::chrono::milliseconds(options_.event_flush_interval_ms);
  std::uint64_t dup_seen = 0;

  while (true) {
    const auto batch = backoff_retry("intra poll", [&] {
      return consumer.poll(options_.poll_batch, /*timeout_ms=*/5);
    });
    for (const auto& msg : batch) {
      Event event;
      try {
        event = Event::from_json(Json::parse(msg.message.value));
      } catch (const std::exception& e) {
        dead_letter("intra-decode", msg.message.value, e.what());
        continue;
      }
      if (auto reason = validate_event(event)) {
        dead_letter("intra-validate", msg.message.value, *reason);
        continue;
      }
      encoder.on_event(std::move(event));
      intra_processed_.fetch_add(1, std::memory_order_relaxed);
    }
    const std::uint64_t dups = encoder.duplicates_dropped();
    intra_duplicates_.fetch_add(dups - dup_seen, std::memory_order_relaxed);
    dup_seen = dups;

    const auto now = Clock::now();
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    if (now - last_flush >= interval || (stopping && batch.empty())) {
      encoder.flush();
      consumer.commit();
      last_flush = now;
      if (stopping && batch.empty() && encoder.pending() == 0) break;
    }
  }
}

void Pipeline::run_inter(int index, const std::vector<int>& partitions) {
  queue::Consumer consumer(broker_, "horus-inter-" + std::to_string(index),
                           options_.timeline_topic, partitions);
  InterProcessEncoder encoder(graph_);

  const bool durable = !options_.wal_dir.empty();
  const std::string wal = durable ? wal_path(index) : std::string();
  if (durable) {
    encoder.set_spill_capture(true);
    // Rehydrate the pending-pair state the previous incarnation spilled at
    // its last commit; the queue window after that commit replays on top.
    for (Event& event : read_pending_wal(wal)) {
      encoder.on_event(std::move(event));
    }
  }

  // One commit point: everything consumed so far is flushed to the graph,
  // then the surviving pending state is spilled, then offsets commit. A
  // crash between any two steps re-runs from the previous commit; flushes
  // and edges are idempotent, so the replay is absorbed.
  auto commit_cycle = [&] {
    encoder.flush();
    if (durable) write_pending_wal(wal, encoder.snapshot_pending());
    consumer.commit();
  };

  auto last_flush = Clock::now();
  const auto interval =
      std::chrono::milliseconds(options_.relationship_flush_interval_ms);

  while (true) {
    const auto batch = backoff_retry("inter poll", [&] {
      return consumer.poll(options_.poll_batch, /*timeout_ms=*/5);
    });
    for (const auto& msg : batch) {
      Event event;
      try {
        event = Event::from_json(Json::parse(msg.message.value));
      } catch (const std::exception& e) {
        dead_letter("inter-decode", msg.message.value, e.what());
        continue;
      }
      encoder.on_event(std::move(event));
      inter_processed_.fetch_add(1, std::memory_order_relaxed);
    }
    const auto now = Clock::now();
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    if (now - last_flush >= interval || (stopping && batch.empty())) {
      commit_cycle();
      last_flush = now;
      if (stopping && batch.empty()) break;
    }
  }
}

bool Pipeline::committed_through(const std::string& topic,
                                 const std::string& group_prefix,
                                 int workers) const {
  queue::Topic& t = broker_.topic(topic);
  for (int w = 0; w < workers; ++w) {
    const std::string group = group_prefix + std::to_string(w);
    for (int p = w; p < options_.partitions; p += workers) {
      if (broker_.committed_offset(group, topic, p) <
          t.partition(p).end_offset()) {
        return false;
      }
    }
  }
  return true;
}

bool Pipeline::drain() {
  // Drained == every stage has consumed AND committed everything the broker
  // holds for it: first the sources topic (intra workers), then the
  // timeline topic (inter workers; the intra stage no longer produces into
  // it once the sources are committed through). Offsets are the ground
  // truth — processed-event counters are inflated by injected duplicates
  // and crash replays, committed offsets are not.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
  for (;;) {
    if (committed_through(options_.sources_topic, "horus-intra-",
                          options_.intra_workers) &&
        committed_through(options_.timeline_topic, "horus-inter-",
                          options_.inter_workers)) {
      return true;
    }
    if (Clock::now() >= deadline) {
      diag(DiagLevel::kError, "pipeline",
           "drain timed out after " +
               std::to_string(options_.drain_timeout_ms) +
               "ms; published=" + std::to_string(published_.load()) +
               " intra=" + std::to_string(intra_processed_.load()) +
               " forwarded=" + std::to_string(intra_forwarded_.load()) +
               " inter=" + std::to_string(inter_processed_.load()) +
               " retried=" + std::to_string(retried_.load()) +
               " dead-lettered=" + std::to_string(dead_lettered_.load()) +
               " recoveries=" + std::to_string(recoveries_.load()));
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void Pipeline::stop() {
  if (!running_.load()) return;
  stop_requested_.store(true, std::memory_order_release);
  for (ThreadPool::ServiceThread& worker : workers_) worker.join();
  workers_.clear();
  running_.store(false);
}

}  // namespace horus
