// ClockDaemon — online logical-time maintenance for live monitoring.
//
// The paper notes that short flush intervals make data "more quickly
// available for querying (which is useful for online monitoring)". The
// daemon completes that story: it periodically runs the incremental clock
// assignment over a graph that the pipeline is still writing, and exposes
// thread-safe causal queries over the portion assigned so far.
//
// Incremental assignment is only exact when every edge incident to the
// events being assigned has already been persisted (the flush-horizon
// discipline). The pipeline flushes nodes (intra stage) and edges (inter
// stage) on independent timers, so a tick can race ahead of a causal pair:
// an event may receive an in-edge *after* its clocks were computed. The
// daemon therefore self-heals: each tick first audits every edge between
// assigned events (Lamport must strictly increase); on any violation it
// discards and recomputes all clocks. Audits are O(edges) — fine at
// monitoring cadence — and violations are rare (they need an inter flush to
// overtake two intra flushes).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/thread_pool.h"
#include "core/causal_query.h"
#include "core/execution_graph.h"
#include "core/logical_clocks.h"

namespace horus {

class ClockDaemon {
 public:
  struct Options {
    int interval_ms = 100;
    /// VC storage backend for the assigner (see ClockMode); threaded from
    /// horusd / the CLI. Both modes are differentially pinned equal.
    ClockMode mode = ClockMode::kFlat;
    /// Sparse mode keyframe cadence (ClockTable docs); ignored in flat mode.
    std::int32_t keyframe_interval = ClockTable::kDefaultKeyframeInterval;
  };

  explicit ClockDaemon(ExecutionGraph& graph)
      : ClockDaemon(graph, Options{}) {}
  ClockDaemon(ExecutionGraph& graph, Options options);
  ~ClockDaemon();

  ClockDaemon(const ClockDaemon&) = delete;
  ClockDaemon& operator=(const ClockDaemon&) = delete;

  /// Starts the periodic background thread.
  void start();

  /// Stops the background thread (runs one final tick).
  void stop();

  /// Runs one assignment pass now (audit + incremental assign, or full
  /// recompute after a detected violation). Returns nodes assigned.
  std::size_t tick();

  // -- thread-safe queries over the currently assigned portion -------------

  /// Q1 over assigned events; false when either event lacks clocks yet.
  [[nodiscard]] bool happens_before(graph::NodeId a, graph::NodeId b) const;

  /// Q2 over assigned events; empty when endpoints lack clocks yet.
  [[nodiscard]] CausalGraphResult get_causal_graph(graph::NodeId a,
                                                   graph::NodeId b,
                                                   bool only_logs = false) const;

  /// Q2 with explicit engine options (query guard, thread pool) — the
  /// service front-end routes admitted sessions through this overload so
  /// per-query limits apply to daemon-served traversals too.
  [[nodiscard]] CausalGraphResult get_causal_graph(
      graph::NodeId a, graph::NodeId b, const QueryOptions& options,
      bool only_logs = false) const;

  /// Runs `fn(const ClockTable&)` under the shared lock — a consistent view
  /// of the clocks without copying the table. Used by the checkpoint writer
  /// to serialize clock state atomically with respect to ticks.
  template <typename Fn>
  auto with_clocks(Fn&& fn) const {
    const std::shared_lock lock(mutex_);
    return fn(assigner_.clocks());
  }

  /// Replaces the daemon's clock state with a restored table (blocks ticks
  /// and queries for the duration). The assigned-node count is recomputed
  /// from the table itself.
  void restore_clocks(ClockTable table);

  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_.load(); }
  [[nodiscard]] std::uint64_t heals() const noexcept { return heals_.load(); }
  [[nodiscard]] std::size_t assigned_nodes() const;

 private:
  /// Heads of edges between assigned nodes that violate the Lamport or
  /// vector-clock invariant (stale incremental assignments); empty when the
  /// clocks are consistent. The heads seed the targeted repair pass.
  [[nodiscard]] std::vector<graph::NodeId> audit_locked() const;

  ExecutionGraph& graph_;
  Options options_;

  mutable std::shared_mutex mutex_;
  LogicalClockAssigner assigner_;
  std::size_t assigned_ = 0;

  /// Periodic tick loop, spawned through the shared ThreadPool's service
  /// facility (see thread_pool.h).
  ThreadPool::ServiceThread worker_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> heals_{0};
};

}  // namespace horus
