#include "core/execution_graph.h"

#include <stdexcept>

#include "graph/graph_io.h"

namespace horus {

graph::PropertyMap event_to_properties(const Event& event) {
  graph::PropertyMap props;
  props.emplace(std::string(kPropEventId),
                static_cast<std::int64_t>(value_of(event.id)));
  props.emplace(std::string(kPropHost), event.service);
  props.emplace(std::string(kPropThread), event.thread.to_string());
  props.emplace(std::string(kPropTimestamp), event.timestamp);
  props.emplace(std::string(kPropEventType), std::string(to_string(event.type)));
  if (const auto* l = event.log()) {
    props.emplace(std::string(kPropMessage), l->message);
    props.emplace("logger", l->logger);
  } else if (const auto* n = event.net()) {
    props.emplace("src", n->channel.src.to_string());
    props.emplace("dst", n->channel.dst.to_string());
    props.emplace("offset", static_cast<std::int64_t>(n->offset));
    props.emplace("size", static_cast<std::int64_t>(n->size));
  } else if (const auto* c = event.child()) {
    props.emplace("childThread", c->child.to_string());
  } else if (const auto* f = event.fsync()) {
    props.emplace("path", f->path);
  }
  return props;
}

graph::PropertyList ExecutionGraph::event_to_property_list(
    const Event& event) const {
  graph::PropertyList props;
  props.reserve(8);
  props.emplace_back(keys_.event_id,
                     static_cast<std::int64_t>(value_of(event.id)));
  props.emplace_back(keys_.host, event.service);
  props.emplace_back(keys_.thread, event.thread.to_string());
  props.emplace_back(keys_.timestamp, event.timestamp);
  props.emplace_back(keys_.event_type, std::string(to_string(event.type)));
  if (const auto* l = event.log()) {
    props.emplace_back(keys_.message, l->message);
    props.emplace_back(keys_.logger, l->logger);
  } else if (const auto* n = event.net()) {
    props.emplace_back(keys_.src, n->channel.src.to_string());
    props.emplace_back(keys_.dst, n->channel.dst.to_string());
    props.emplace_back(keys_.offset, static_cast<std::int64_t>(n->offset));
    props.emplace_back(keys_.size, static_cast<std::int64_t>(n->size));
  } else if (const auto* c = event.child()) {
    props.emplace_back(keys_.child_thread, c->child.to_string());
  } else if (const auto* f = event.fsync()) {
    props.emplace_back(keys_.path, f->path);
  }
  return props;
}

ExecutionGraph::ExecutionGraph() {
  // Schema keys are interned once; hot numeric keys (clock, timestamp, event
  // id) live in dense direct columns and hot low-cardinality strings
  // (timeline, event type, host) in interned columns, so the Fig. 7/8 query
  // paths read flat vectors instead of per-node maps.
  keys_.lamport = store_.declare_column(kPropLamport);
  keys_.timestamp = store_.declare_column(kPropTimestamp);
  keys_.event_id = store_.declare_column(kPropEventId);
  keys_.timeline = store_.declare_interned_column(kPropTimeline);
  keys_.event_type = store_.declare_interned_column(kPropEventType);
  keys_.host = store_.declare_interned_column(kPropHost);
  keys_.thread = store_.intern_prop_key(kPropThread);
  keys_.message = store_.intern_prop_key(kPropMessage);
  keys_.logger = store_.intern_prop_key("logger");
  keys_.src = store_.intern_prop_key("src");
  keys_.dst = store_.intern_prop_key("dst");
  keys_.offset = store_.intern_prop_key("offset");
  keys_.size = store_.intern_prop_key("size");
  keys_.child_thread = store_.intern_prop_key("childThread");
  keys_.path = store_.intern_prop_key("path");

  // The Horus query strategy needs: an ordered index on the Lamport clock
  // (LC range bounding), a hash index on eventId (node lookup by id) and on
  // host (the case-study query's anchor filters).
  store_.create_ordered_index(keys_.lamport);
  store_.create_index(keys_.event_id);
  store_.create_index(keys_.host);
}

std::string timeline_key(const Event& event, TimelineGranularity granularity) {
  if (granularity == TimelineGranularity::kThread) {
    return event.thread.to_string();
  }
  return event.thread.host + "/" + std::to_string(event.thread.pid);
}

graph::NodeId ExecutionGraph::add_event(const Event& event,
                                        const std::string& timeline) {
  {
    const std::lock_guard lock(mutex_);
    auto it = node_by_event_.find(event.id);
    if (it != node_by_event_.end()) return it->second;
  }
  graph::PropertyList props = event_to_property_list(event);
  props.emplace_back(keys_.timeline, timeline);
  const graph::NodeId node =
      store_.add_node_typed(to_string(event.type), std::move(props));
  const std::lock_guard lock(mutex_);
  node_by_event_.emplace(event.id, node);
  auto [tail_it, inserted] = tails_.try_emplace(
      timeline, TimelineTail{event.id, event.timestamp});
  if (!inserted && (event.timestamp > tail_it->second.timestamp ||
                    (event.timestamp == tail_it->second.timestamp &&
                     event.id > tail_it->second.id))) {
    tail_it->second = TimelineTail{event.id, event.timestamp};
  }
  return node;
}

std::optional<ExecutionGraph::TimelineTail> ExecutionGraph::timeline_tail(
    const std::string& timeline) const {
  const std::lock_guard lock(mutex_);
  auto it = tails_.find(timeline);
  if (it == tails_.end()) return std::nullopt;
  return it->second;
}

namespace {
std::uint64_t edge_key(graph::NodeId from, graph::NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) |
         static_cast<std::uint64_t>(to);
}
}  // namespace

void ExecutionGraph::add_intra_edge(EventId from, EventId to) {
  const auto a = node_of(from);
  const auto b = node_of(to);
  if (!a || !b) {
    throw std::logic_error("execution graph: intra edge on unknown event");
  }
  {
    const std::lock_guard lock(mutex_);
    if (!intra_edges_seen_.insert(edge_key(*a, *b)).second) return;
  }
  store_.add_edge(*a, *b, kIntraEdgeType);
}

void ExecutionGraph::add_inter_edge(EventId from, EventId to) {
  const auto a = node_of(from);
  const auto b = node_of(to);
  if (!a || !b) {
    throw std::logic_error("execution graph: inter edge on unknown event");
  }
  {
    const std::lock_guard lock(mutex_);
    if (!inter_edges_seen_.insert(edge_key(*a, *b)).second) return;
  }
  store_.add_edge(*a, *b, kInterEdgeType);
}

std::optional<graph::NodeId> ExecutionGraph::node_of(EventId id) const {
  const std::lock_guard lock(mutex_);
  auto it = node_by_event_.find(id);
  if (it == node_by_event_.end()) return std::nullopt;
  return it->second;
}

EventId ExecutionGraph::event_of(graph::NodeId node) const {
  const graph::PropertyValue& v = store_.property(node, keys_.event_id);
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<EventId>(static_cast<std::uint64_t>(*i));
  }
  throw std::logic_error("execution graph: node without eventId");
}

std::size_t ExecutionGraph::event_count() const {
  const std::lock_guard lock(mutex_);
  return node_by_event_.size();
}

void ExecutionGraph::save(const std::string& path) const {
  graph::save_graph_file(store_, path);
}

void ExecutionGraph::load(const std::string& path) {
  graph::load_graph_file(store_, path);
  reindex_loaded_store();
}

void ExecutionGraph::reindex_loaded_store() {
  const std::lock_guard lock(mutex_);
  for (graph::NodeId v = 0; v < store_.node_count(); ++v) {
    const graph::PropertyValue& id = store_.property(v, keys_.event_id);
    const auto* i = std::get_if<std::int64_t>(&id);
    if (i == nullptr) continue;
    const auto event_id = static_cast<EventId>(static_cast<std::uint64_t>(*i));
    node_by_event_.emplace(event_id, v);

    const graph::PropertyValue& timeline = store_.property(v, keys_.timeline);
    const graph::PropertyValue& ts = store_.property(v, keys_.timestamp);
    const auto* tl = std::get_if<std::string>(&timeline);
    const auto* t = std::get_if<std::int64_t>(&ts);
    if (tl == nullptr || t == nullptr) continue;
    auto [tail_it, inserted] =
        tails_.try_emplace(*tl, TimelineTail{event_id, *t});
    if (!inserted && (*t > tail_it->second.timestamp ||
                      (*t == tail_it->second.timestamp &&
                       event_id > tail_it->second.id))) {
      tail_it->second = TimelineTail{event_id, *t};
    }
  }
  // Seed the edge-dedup sets so encoders writing into a loaded graph stay
  // idempotent against the snapshotted edges.
  const auto intra_type = store_.edge_type_id(kIntraEdgeType);
  const auto inter_type = store_.edge_type_id(kInterEdgeType);
  for (graph::NodeId v = 0; v < store_.node_count(); ++v) {
    for (const graph::Edge& e : store_.out_edges(v)) {
      if (intra_type && e.type == *intra_type) {
        intra_edges_seen_.insert(edge_key(v, e.to));
      } else if (inter_type && e.type == *inter_type) {
        inter_edges_seen_.insert(edge_key(v, e.to));
      }
    }
  }
}

}  // namespace horus
