// Chain-decomposition reachability index ("Causality is Graphically
// Simple"): the causal DAG of a distributed execution decomposes naturally
// into one chain per timeline — the intra encoder links consecutive events
// of a timeline with an explicit NEXT edge — plus the cross-timeline merge
// edges (HB pairs). Reachability from a fixed source is then fully described
// by one integer per chain:
//
//   fwd[t]  = the smallest position on timeline t reachable from a
//             (everything at or after it is reachable via the chain;
//              everything before it is not),
//   back[t] = the largest position on timeline t that reaches b.
//
// Both vectors are computed by a worklist relaxation that scans each merge
// edge at most once (per-timeline watermark pointers into position-sorted
// edge lists), so a full Q1/Q2 pruning oracle costs O(#merge-edges +
// #timelines) per query *endpoint pair* — independent of how many candidate
// nodes get tested afterwards, and without touching vector clocks at all.
// That makes the index an alternative pruning backend for Q2: the causal
// cut between a and b is exactly
//
//   { v : fwd[timeline(v)] <= pos(v) && pos(v) <= back[timeline(v)] }.
//
// The decomposition into per-timeline chains relies on the same invariant
// the sparse clock lanes do: consecutive events of a timeline are connected
// by an intra edge (guaranteed by the intra-process encoder).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/execution_graph.h"
#include "core/logical_clocks.h"

namespace horus {

class ChainIndex {
 public:
  /// fwd[] value for "no event of this timeline is reachable".
  static constexpr std::int32_t kUnreachable =
      std::numeric_limits<std::int32_t>::max();

  /// Builds the merge-edge lists from the stored graph; `clocks` supplies
  /// the (timeline, position) chain coordinates, so every indexed node must
  /// already be assigned. Rebuild after new events are ingested (the index
  /// is a per-snapshot accelerator, not an incrementally maintained one).
  ChainIndex(const ExecutionGraph& graph, const ClockTable& clocks);

  /// fwd bounds of `a`: out[t] = smallest reachable position on timeline t,
  /// kUnreachable when none. out is resized to timeline_count().
  void forward_bounds(graph::NodeId a, std::vector<std::int32_t>& out) const;

  /// back bounds of `b`: out[t] = largest position on timeline t reaching b,
  /// 0 when none.
  void backward_bounds(graph::NodeId b, std::vector<std::int32_t>& out) const;

  /// Q1 via the chain decomposition (one forward relaxation, no clocks).
  [[nodiscard]] bool happens_before(graph::NodeId a, graph::NodeId b) const;

  [[nodiscard]] std::size_t timeline_count() const noexcept {
    return out_lists_.size();
  }
  [[nodiscard]] std::size_t merge_edge_count() const noexcept {
    return merge_edges_;
  }

 private:
  /// One cross-timeline merge edge in chain coordinates.
  struct MergeEdge {
    std::int32_t src_pos = 0;
    std::int32_t dst_tl = 0;
    std::int32_t dst_pos = 0;
  };
  struct MergeEdgeIn {
    std::int32_t dst_pos = 0;
    std::int32_t src_tl = 0;
    std::int32_t src_pos = 0;
  };

  const ClockTable& clocks_;
  /// Per source timeline, merge edges sorted ascending by src_pos: the
  /// reachable region of a chain is a position suffix, so the forward
  /// relaxation consumes each list from the back down to a watermark.
  std::vector<std::vector<MergeEdge>> out_lists_;
  /// Per destination timeline, merge edges sorted ascending by dst_pos (the
  /// co-reachable region is a prefix; consumed front-up).
  std::vector<std::vector<MergeEdgeIn>> in_lists_;
  std::size_t merge_edges_ = 0;
};

}  // namespace horus
