// Intra-Process HB Encoder — first stage of the Horus event-processing
// pipeline (Section IV-A of the paper).
//
// Maintains one *timeline* per process (here: per thread, the unit of
// program order). Incoming events are inserted into their timeline in
// timestamp order, so events that arrive out of order — multiple independent
// tracers on a host ship without synchronization — still produce a
// causally-consistent timeline, provided all tracers on a host share the
// same monotonic clock (the paper's stated requirement).
//
// On flush, buffered events are persisted as graph nodes, chained to the
// timeline's previously flushed tail with "NEXT" (program-order) edges, and
// forwarded downstream to the inter-process stage. The flush cadence is the
// tunable the paper discusses: long intervals = fewer database round trips
// but more memory and staler data; short intervals = the reverse.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/execution_graph.h"
#include "event/event.h"

namespace horus {

class IntraProcessEncoder {
 public:
  struct Options {
    /// Paper default: one timeline per OS process (see kPropTimeline docs).
    TimelineGranularity granularity = TimelineGranularity::kProcess;
  };

  /// @param downstream receives events in final (per-timeline causal) order,
  ///        after their nodes are persisted — the feed of the inter-process
  ///        stage. May be empty.
  IntraProcessEncoder(ExecutionGraph& graph, EventSinkFn downstream)
      : IntraProcessEncoder(graph, std::move(downstream), Options{}) {}
  IntraProcessEncoder(ExecutionGraph& graph, EventSinkFn downstream,
                      Options options);

  /// Buffers one event into its process timeline (ordered insert).
  void on_event(Event event);

  /// Persists all buffered timeline segments and forwards them downstream.
  void flush();

  /// Number of buffered (not yet flushed) events.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }

  /// Number of events flushed so far.
  [[nodiscard]] std::uint64_t flushed() const noexcept { return flushed_; }

  /// Count of replayed/duplicated deliveries dropped by the id-based
  /// suppression (at-least-once queue semantics; inflated by crash replays
  /// and injected duplicates, never by first deliveries).
  [[nodiscard]] std::uint64_t duplicates_dropped() const noexcept {
    return duplicates_dropped_;
  }

  /// Count of events that arrived with a timestamp older than their
  /// timeline's already-flushed tail. Such events can no longer be placed in
  /// program order (the flush horizon passed them); Horus appends them after
  /// the tail and counts the anomaly. A non-zero value with a sane flush
  /// interval indicates a broken host clock.
  [[nodiscard]] std::uint64_t late_events() const noexcept { return late_; }

 private:
  struct Timeline {
    /// Buffered events sorted by (timestamp, id).
    std::vector<Event> buffer;
    /// Ids currently buffered (duplicate suppression for the queue's
    /// at-least-once delivery).
    std::unordered_set<EventId> buffered_ids;
    /// Last event persisted for this timeline (tail of the stored chain).
    std::optional<EventId> tail;
    TimeNs tail_timestamp = 0;
  };

  ExecutionGraph& graph_;
  EventSinkFn downstream_;
  Options options_;
  std::unordered_map<std::string, Timeline> timelines_;
  std::size_t pending_ = 0;
  std::uint64_t flushed_ = 0;
  std::uint64_t late_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
};

}  // namespace horus
