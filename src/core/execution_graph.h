// ExecutionGraph: the causal graph of one distributed execution, stored in
// the embedded property-graph database.
//
// Nodes are events (labelled with their event type, so queries can match
// (x:SND {...}) like the paper's Cypher), edges are happens-before
// relations: "NEXT" for intra-process program order, "HB" for inter-process
// causal pairs. The wrapper maintains the EventId -> NodeId mapping and
// declares the indexes the Horus query strategy depends on (notably the
// ordered index on lamportLogicalTime).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "event/event.h"
#include "graph/graph_store.h"

namespace horus {

/// Edge type names in the stored graph.
inline constexpr std::string_view kIntraEdgeType = "NEXT";
inline constexpr std::string_view kInterEdgeType = "HB";

/// Property keys (matching the paper's query vocabulary where it is shown).
inline constexpr std::string_view kPropEventId = "eventId";
inline constexpr std::string_view kPropHost = "host";        // service name
inline constexpr std::string_view kPropThread = "thread";    // host/pid.tid
inline constexpr std::string_view kPropTimeline = "timeline";  // process key
inline constexpr std::string_view kPropTimestamp = "timestamp";
inline constexpr std::string_view kPropMessage = "message";  // LOG only
inline constexpr std::string_view kPropLamport = "lamportLogicalTime";
inline constexpr std::string_view kPropEventType = "eventType";

/// The execution-graph schema, resolved to store PropKeyIds once at
/// construction. Hot paths (clock assignment, causal queries, exports) use
/// these ids instead of re-hashing key strings per node.
struct ExecutionGraphKeys {
  graph::PropKeyId event_id = graph::kNoPropKey;
  graph::PropKeyId host = graph::kNoPropKey;
  graph::PropKeyId thread = graph::kNoPropKey;
  graph::PropKeyId timeline = graph::kNoPropKey;
  graph::PropKeyId timestamp = graph::kNoPropKey;
  graph::PropKeyId message = graph::kNoPropKey;
  graph::PropKeyId lamport = graph::kNoPropKey;
  graph::PropKeyId event_type = graph::kNoPropKey;
  graph::PropKeyId logger = graph::kNoPropKey;
  graph::PropKeyId src = graph::kNoPropKey;
  graph::PropKeyId dst = graph::kNoPropKey;
  graph::PropKeyId offset = graph::kNoPropKey;
  graph::PropKeyId size = graph::kNoPropKey;
  graph::PropKeyId child_thread = graph::kNoPropKey;
  graph::PropKeyId path = graph::kNoPropKey;
};

/// The unit of program order. The paper builds *process* timelines (96 for
/// the 20k-event TrainTicket trace; a process's threads share its host's
/// monotonic clock, so ordering them by timestamp is well-defined). Thread
/// granularity is stricter: no ordering is assumed between sibling threads.
enum class TimelineGranularity { kProcess, kThread };

/// The timeline key of an event under a granularity choice.
[[nodiscard]] std::string timeline_key(const Event& event,
                                       TimelineGranularity granularity);

class ExecutionGraph {
 public:
  ExecutionGraph();

  ExecutionGraph(const ExecutionGraph&) = delete;
  ExecutionGraph& operator=(const ExecutionGraph&) = delete;

  /// Persists an event as a graph node (idempotent per EventId).
  /// @param timeline the timeline key assigned by the intra-process encoder
  ///        (stored as the `timeline` property the clock assigner groups by).
  graph::NodeId add_event(const Event& event, const std::string& timeline);

  /// Program-order edge between two already-persisted events. Idempotent
  /// per (from, to): a crashed-and-restarted encoder replaying a window of
  /// the queue may re-derive edges it already stored, and must not grow the
  /// graph doing so.
  void add_intra_edge(EventId from, EventId to);

  /// Inter-process causal edge (stored as an edge of type "HB"). Idempotent
  /// per (from, to), independently of any NEXT edge between the same pair —
  /// the same two events can legitimately carry both (e.g. CREATE -> START
  /// within one process timeline).
  void add_inter_edge(EventId from, EventId to);

  /// Node lookup; std::nullopt when the event was never persisted.
  [[nodiscard]] std::optional<graph::NodeId> node_of(EventId id) const;

  /// The latest persisted event of a timeline (by timestamp, event id as
  /// tiebreaker). A restarted intra-process encoder recovers its chain tail
  /// from here, so program-order edges survive encoder crashes.
  struct TimelineTail {
    EventId id = kInvalidEventId;
    TimeNs timestamp = 0;
  };
  [[nodiscard]] std::optional<TimelineTail> timeline_tail(
      const std::string& timeline) const;

  /// Inverse lookup via the eventId node property.
  [[nodiscard]] EventId event_of(graph::NodeId node) const;

  [[nodiscard]] graph::GraphStore& store() noexcept { return store_; }
  [[nodiscard]] const graph::GraphStore& store() const noexcept {
    return store_;
  }

  /// Schema keys resolved at construction (stable for the store's lifetime).
  [[nodiscard]] const ExecutionGraphKeys& keys() const noexcept {
    return keys_;
  }

  [[nodiscard]] std::size_t event_count() const;

  /// Persists the stored execution (nodes, edges, properties — including
  /// assigned lamportLogicalTime) to a snapshot file.
  void save(const std::string& path) const;

  /// Loads a snapshot into this (empty) graph; indexes and the
  /// EventId -> NodeId map are rebuilt. Vector clocks are not stored in the
  /// snapshot — run a LogicalClockAssigner afterwards.
  void load(const std::string& path);

  /// Rebuilds the EventId -> NodeId map, timeline tails, and edge-dedup
  /// sets from the store's current contents. For restore paths that
  /// populate the store directly (the segmented checkpoint loader) instead
  /// of going through load(); must only be called once, while this
  /// wrapper's own maps are still empty.
  void reindex_loaded_store();

 private:
  /// Typed property bag for an event (hot write path — no string interning
  /// per event).
  [[nodiscard]] graph::PropertyList event_to_property_list(
      const Event& event) const;

  graph::GraphStore store_;
  ExecutionGraphKeys keys_;
  mutable std::mutex mutex_;
  std::unordered_map<EventId, graph::NodeId> node_by_event_;
  std::unordered_map<std::string, TimelineTail> tails_;
  // Edge dedup for crash-replay idempotence, keyed (from << 32) | to.
  // GraphStore::add_edge itself is not idempotent.
  std::unordered_set<std::uint64_t> intra_edges_seen_;
  std::unordered_set<std::uint64_t> inter_edges_seen_;
};

/// Converts an Event to the name-keyed node property bag persisted in the
/// store (cold path; the graph's internal write path uses the typed form).
[[nodiscard]] graph::PropertyMap event_to_properties(const Event& event);

}  // namespace horus
