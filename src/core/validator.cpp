#include "core/validator.h"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>

namespace horus {

namespace {

using graph::GraphStore;
using graph::NodeId;

std::optional<std::int64_t> int_prop(const GraphStore& store, NodeId node,
                                     graph::PropKeyId key) {
  const auto& v = store.property(node, key);
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  return std::nullopt;
}

std::optional<std::string> str_prop(const GraphStore& store, NodeId node,
                                    graph::PropKeyId key) {
  const auto& v = store.property(node, key);
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  return std::nullopt;
}

class Validator {
 public:
  Validator(const ExecutionGraph& graph, const ClockTable* clocks)
      : graph_(graph),
        store_(graph.store()),
        keys_(graph.keys()),
        clocks_(clocks) {}

  ValidationReport run() {
    check_acyclic();
    check_timeline_chains();
    check_hb_edges();
    if (clocks_ != nullptr) check_clocks();
    return std::move(report_);
  }

 private:
  [[nodiscard]] std::string node_desc(NodeId node) const {
    std::string out =
        "#" + std::to_string(node) + "(" + store_.node_label(node);
    const auto& thread = store_.property(node, keys_.thread);
    if (const auto* s = std::get_if<std::string>(&thread)) out += " " + *s;
    out += ")";
    return out;
  }

  void issue(const char* invariant, std::string detail) {
    // Cap the report to keep massive violations readable.
    if (report_.issues.size() < 64) {
      report_.issues.push_back(ValidationIssue{invariant, std::move(detail)});
    }
  }

  void check_acyclic() {
    const auto n = static_cast<NodeId>(store_.node_count());
    std::vector<std::int32_t> indegree(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      indegree[v] = static_cast<std::int32_t>(store_.in_edges(v).size());
    }
    std::vector<NodeId> frontier;
    for (NodeId v = 0; v < n; ++v) {
      if (indegree[v] == 0) frontier.push_back(v);
    }
    std::size_t seen = 0;
    while (!frontier.empty()) {
      const NodeId v = frontier.back();
      frontier.pop_back();
      ++seen;
      for (const graph::Edge& e : store_.out_edges(v)) {
        if (--indegree[e.to] == 0) frontier.push_back(e.to);
      }
    }
    if (seen != n) {
      issue("V1", "graph contains a cycle through " +
                      std::to_string(n - seen) + " node(s)");
    }
  }

  void check_timeline_chains() {
    const auto next_type = store_.edge_type_id(kIntraEdgeType);
    if (!next_type) return;  // no intra edges at all (single-event timelines)
    const auto n = static_cast<NodeId>(store_.node_count());

    // Per node: count of NEXT in/out edges; NEXT edges must stay within one
    // timeline and respect (timestamp, eventId) order.
    for (NodeId v = 0; v < n; ++v) {
      std::size_t next_out = 0;
      for (const graph::Edge& e : store_.out_edges(v)) {
        if (e.type != *next_type) continue;
        ++next_out;
        // Interned timeline column: integer compare instead of strings.
        const auto tl_a = store_.interned_id(v, keys_.timeline);
        const auto tl_b = store_.interned_id(e.to, keys_.timeline);
        if (tl_a != tl_b) {
          issue("V2", "NEXT edge crosses timelines: " +
                          node_desc(v) + " -> " +
                          node_desc(e.to));
        }
        const auto ts_a = int_prop(store_, v, keys_.timestamp);
        const auto ts_b = int_prop(store_, e.to, keys_.timestamp);
        if (ts_a && ts_b && *ts_a > *ts_b) {
          issue("V2", "NEXT edge goes backwards in time: " +
                          node_desc(v) + " -> " +
                          node_desc(e.to));
        }
      }
      if (next_out > 1) {
        issue("V2", "node has " + std::to_string(next_out) +
                        " outgoing NEXT edges (timeline is not a chain): " +
                        node_desc(v));
      }
      std::size_t next_in = 0;
      for (const graph::Edge& e : store_.in_edges(v)) {
        if (e.type == *next_type) ++next_in;
      }
      if (next_in > 1) {
        issue("V2", "node has " + std::to_string(next_in) +
                        " incoming NEXT edges: " + node_desc(v));
      }
    }
  }

  void check_hb_edges() {
    const auto hb_type = store_.edge_type_id(kInterEdgeType);
    if (!hb_type) return;
    const auto n = static_cast<NodeId>(store_.node_count());
    for (NodeId v = 0; v < n; ++v) {
      for (const graph::Edge& e : store_.out_edges(v)) {
        if (e.type != *hb_type) continue;
        check_hb_pair(v, e.to);
      }
    }
  }

  void check_hb_pair(NodeId from, NodeId to) {
    const std::string& from_label = store_.node_label(from);
    const std::string& to_label = store_.node_label(to);

    auto bad = [&](const std::string& why) {
      issue("V3", "HB edge " + node_desc(from) + " -> " +
                      node_desc(to) + ": " + why);
    };

    if (from_label == "SND" && to_label == "RCV") {
      const auto src_a = str_prop(store_, from, keys_.src);
      const auto src_b = str_prop(store_, to, keys_.src);
      const auto dst_a = str_prop(store_, from, keys_.dst);
      const auto dst_b = str_prop(store_, to, keys_.dst);
      if (src_a != src_b || dst_a != dst_b) {
        bad("channel mismatch");
        return;
      }
      const auto off_a = int_prop(store_, from, keys_.offset);
      const auto len_a = int_prop(store_, from, keys_.size);
      const auto off_b = int_prop(store_, to, keys_.offset);
      const auto len_b = int_prop(store_, to, keys_.size);
      if (!off_a || !len_a || !off_b || !len_b) {
        bad("missing byte-range attributes");
        return;
      }
      const bool overlap =
          *off_a < *off_b + *len_b && *off_b < *off_a + *len_a;
      if (!overlap) bad("byte ranges do not overlap");
      return;
    }
    if (from_label == "CONNECT" && to_label == "ACCEPT") {
      if (str_prop(store_, from, keys_.src) != str_prop(store_, to, keys_.src) ||
          str_prop(store_, from, keys_.dst) != str_prop(store_, to, keys_.dst)) {
        bad("channel mismatch");
      }
      return;
    }
    if ((from_label == "CREATE" || from_label == "FORK") &&
        to_label == "START") {
      if (str_prop(store_, from, keys_.child_thread) !=
          str_prop(store_, to, keys_.thread)) {
        bad("CREATE/FORK child does not match STARTed thread");
      }
      return;
    }
    if (from_label == "END" && to_label == "JOIN") {
      if (str_prop(store_, from, keys_.thread) !=
          str_prop(store_, to, keys_.child_thread)) {
        bad("END thread does not match JOINed child");
      }
      return;
    }
    // Other combinations come from user-registered rules; accept them but
    // require distinct timelines (inter-process edges by definition) unless
    // within a process' threads.
  }

  void check_clocks() {
    const auto n = static_cast<NodeId>(store_.node_count());
    std::unordered_map<std::int32_t, std::vector<NodeId>> by_timeline;
    for (NodeId v = 0; v < n; ++v) {
      if (!clocks_->assigned(v)) {
        issue("V4", "node without assigned clocks: " + node_desc(v));
        continue;
      }
      by_timeline[clocks_->timeline_of(v)].push_back(v);
      for (const graph::Edge& e : store_.out_edges(v)) {
        if (clocks_->assigned(e.to) &&
            clocks_->lamport(v) >= clocks_->lamport(e.to)) {
          issue("V4", "Lamport clock does not increase along edge " +
                          node_desc(v) + " -> " +
                          node_desc(e.to));
        }
      }
    }
    for (auto& [timeline, nodes] : by_timeline) {
      std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
        return clocks_->position(a) < clocks_->position(b);
      });
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (clocks_->position(nodes[i]) != static_cast<std::int32_t>(i + 1)) {
          issue("V4", "timeline " +
                          clocks_->timeline_name(timeline) +
                          " has non-dense positions");
          break;
        }
      }
    }
  }

  const ExecutionGraph& graph_;
  const GraphStore& store_;
  const ExecutionGraphKeys& keys_;
  const ClockTable* clocks_;
  ValidationReport report_;
};

}  // namespace

std::string ValidationReport::to_string() const {
  if (ok()) return "ok";
  std::string out;
  for (const ValidationIssue& issue : issues) {
    out += "[" + issue.invariant + "] " + issue.detail + "\n";
  }
  return out;
}

ValidationReport validate_graph(const ExecutionGraph& graph) {
  return Validator(graph, nullptr).run();
}

ValidationReport validate_graph(const ExecutionGraph& graph,
                                const ClockTable& clocks) {
  return Validator(graph, &clocks).run();
}

std::optional<std::string> validate_event(const Event& event) {
  if (event.id == kInvalidEventId) return "invalid event id";
  if (event.thread.host.empty()) return "empty thread host";
  switch (event.type) {
    case EventType::kSnd:
    case EventType::kRcv:
    case EventType::kConnect:
    case EventType::kAccept:
      if (event.net() == nullptr) {
        return std::string(to_string(event.type)) +
               " event without a net payload";
      }
      break;
    case EventType::kCreate:
    case EventType::kFork:
    case EventType::kJoin:
      if (event.child() == nullptr) {
        return std::string(to_string(event.type)) +
               " event without a child-thread payload";
      }
      break;
    default:
      break;
  }
  return std::nullopt;
}

}  // namespace horus
