#include "core/intra_encoder.h"

#include <algorithm>

#include "common/diag.h"

namespace horus {

namespace {
/// Ordering of buffered events within a timeline: timestamp first, event id
/// as the deterministic tiebreaker for identical timestamps.
bool timeline_less(const Event& a, const Event& b) noexcept {
  if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
  return a.id < b.id;
}
}  // namespace

IntraProcessEncoder::IntraProcessEncoder(ExecutionGraph& graph,
                                         EventSinkFn downstream,
                                         Options options)
    : graph_(graph), downstream_(std::move(downstream)), options_(options) {}

void IntraProcessEncoder::on_event(Event event) {
  const std::string key = timeline_key(event, options_.granularity);
  auto [timeline_it, created] = timelines_.try_emplace(key);
  Timeline& timeline = timeline_it->second;
  if (created) {
    // A restarted encoder (or a rebalanced worker) recovers the chain tail
    // from the store, so program order survives across the handover.
    if (const auto tail = graph_.timeline_tail(key)) {
      timeline.tail = tail->id;
      timeline.tail_timestamp = tail->timestamp;
    }
  }

  // At-least-once delivery from the queue can replay events; drop ids that
  // are already buffered or already persisted.
  if (timeline.buffered_ids.contains(event.id) ||
      graph_.node_of(event.id).has_value()) {
    ++duplicates_dropped_;
    return;
  }

  if (timeline.tail && event.timestamp < timeline.tail_timestamp) {
    // The flush horizon already passed this event's position. Program order
    // can no longer be honored; record the anomaly and clamp the timestamp
    // so the event lands right after the persisted tail.
    ++late_;
    diag(DiagLevel::kWarn, "intra-encoder",
         "late event " + std::to_string(value_of(event.id)) + " on timeline " +
             event.thread.to_string());
    event.timestamp = timeline.tail_timestamp;
  }

  // Ordered insert (events arrive nearly sorted, so the scan from the back
  // is O(1) amortized for well-behaved sources).
  timeline.buffered_ids.insert(event.id);
  auto pos = std::upper_bound(timeline.buffer.begin(), timeline.buffer.end(),
                              event, timeline_less);
  timeline.buffer.insert(pos, std::move(event));
  ++pending_;
}

void IntraProcessEncoder::flush() {
  for (auto& [key, timeline] : timelines_) {
    if (timeline.buffer.empty()) continue;

    // Persist nodes first, then the program-order chain.
    for (const Event& event : timeline.buffer) {
      graph_.add_event(event, key);
    }
    for (std::size_t i = 0; i < timeline.buffer.size(); ++i) {
      const Event& event = timeline.buffer[i];
      if (i == 0) {
        if (timeline.tail) graph_.add_intra_edge(*timeline.tail, event.id);
      } else {
        graph_.add_intra_edge(timeline.buffer[i - 1].id, event.id);
      }
    }
    timeline.tail = timeline.buffer.back().id;
    timeline.tail_timestamp = timeline.buffer.back().timestamp;
    flushed_ += timeline.buffer.size();
    pending_ -= timeline.buffer.size();

    // Forward to the inter-process stage in final order.
    if (downstream_) {
      for (Event& event : timeline.buffer) {
        downstream_(std::move(event));
      }
    }
    timeline.buffer.clear();
    timeline.buffered_ids.clear();
  }
}

}  // namespace horus
