#include "core/chain_index.h"

#include <algorithm>

namespace horus {

ChainIndex::ChainIndex(const ExecutionGraph& graph, const ClockTable& clocks)
    : clocks_(clocks) {
  const graph::GraphStore& store = graph.store();
  const auto n = static_cast<graph::NodeId>(store.node_count());
  const std::size_t timelines = clocks.timeline_count();
  out_lists_.resize(timelines);
  in_lists_.resize(timelines);

  for (graph::NodeId v = 0; v < n; ++v) {
    const std::int32_t st = clocks.timeline_of(v);
    if (st < 0) continue;  // unassigned (ingested after the last tick)
    const std::int32_t sp = clocks.position(v);
    for (const graph::Edge& e : store.out_edges_snapshot(v)) {
      if (e.to >= n) continue;
      const std::int32_t dt = clocks.timeline_of(e.to);
      if (dt < 0 || dt == st) continue;  // chain edges are implicit
      const std::int32_t dp = clocks.position(e.to);
      out_lists_[static_cast<std::size_t>(st)].push_back(
          MergeEdge{sp, dt, dp});
      in_lists_[static_cast<std::size_t>(dt)].push_back(
          MergeEdgeIn{dp, st, sp});
      ++merge_edges_;
    }
  }
  for (auto& list : out_lists_) {
    std::sort(list.begin(), list.end(),
              [](const MergeEdge& x, const MergeEdge& y) {
                return x.src_pos < y.src_pos;
              });
  }
  for (auto& list : in_lists_) {
    std::sort(list.begin(), list.end(),
              [](const MergeEdgeIn& x, const MergeEdgeIn& y) {
                return x.dst_pos < y.dst_pos;
              });
  }
}

void ChainIndex::forward_bounds(graph::NodeId a,
                                std::vector<std::int32_t>& out) const {
  const std::size_t timelines = out_lists_.size();
  out.assign(timelines, kUnreachable);
  const std::int32_t ta = clocks_.timeline_of(a);
  if (ta < 0) return;
  out[static_cast<std::size_t>(ta)] = clocks_.position(a);

  // Worklist relaxation. scan_[t] marks how far down the suffix of t's
  // out-list has been consumed; lowering fwd[t] later only extends the
  // suffix, so every merge edge is relaxed at most once.
  std::vector<std::size_t> scan(timelines);
  for (std::size_t t = 0; t < timelines; ++t) scan[t] = out_lists_[t].size();
  std::vector<std::int32_t> worklist{ta};
  while (!worklist.empty()) {
    const auto t = static_cast<std::size_t>(worklist.back());
    worklist.pop_back();
    const auto& list = out_lists_[t];
    const std::int32_t bound = out[t];
    while (scan[t] > 0 && list[scan[t] - 1].src_pos >= bound) {
      const MergeEdge& e = list[--scan[t]];
      const auto dt = static_cast<std::size_t>(e.dst_tl);
      if (e.dst_pos < out[dt]) {
        out[dt] = e.dst_pos;
        worklist.push_back(e.dst_tl);
      }
    }
  }
}

void ChainIndex::backward_bounds(graph::NodeId b,
                                 std::vector<std::int32_t>& out) const {
  const std::size_t timelines = in_lists_.size();
  out.assign(timelines, 0);
  const std::int32_t tb = clocks_.timeline_of(b);
  if (tb < 0) return;
  out[static_cast<std::size_t>(tb)] = clocks_.position(b);

  std::vector<std::size_t> scan(timelines, 0);
  std::vector<std::int32_t> worklist{tb};
  while (!worklist.empty()) {
    const auto t = static_cast<std::size_t>(worklist.back());
    worklist.pop_back();
    const auto& list = in_lists_[t];
    const std::int32_t bound = out[t];
    while (scan[t] < list.size() && list[scan[t]].dst_pos <= bound) {
      const MergeEdgeIn& e = list[scan[t]++];
      const auto st = static_cast<std::size_t>(e.src_tl);
      if (e.src_pos > out[st]) {
        out[st] = e.src_pos;
        worklist.push_back(e.src_tl);
      }
    }
  }
}

bool ChainIndex::happens_before(graph::NodeId a, graph::NodeId b) const {
  if (a == b) return false;
  const std::int32_t tb = clocks_.timeline_of(b);
  if (tb < 0 || clocks_.timeline_of(a) < 0) return false;
  std::vector<std::int32_t> fwd;
  forward_bounds(a, fwd);
  const std::int32_t bound = fwd[static_cast<std::size_t>(tb)];
  const std::int32_t pb = clocks_.position(b);
  // a itself does not count as "reaching b" when they coincide; a -> b on
  // the same chain needs pos(b) strictly after pos(a), which the bound
  // already encodes for every other node.
  return bound != kUnreachable && pb >= bound &&
         !(tb == clocks_.timeline_of(a) && pb == clocks_.position(a));
}

}  // namespace horus
