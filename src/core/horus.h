// Horus — the embedded, single-process facade over the full system.
//
// For interactive analysis, tests and benches it is convenient to run the
// two-stage encoder pipeline synchronously, without brokers or threads:
//
//   Horus horus;
//   horus.ingest(event);        // any arrival order across processes
//   horus.seal();               // flush encoders + assign logical time
//   auto q = horus.query();
//   q.happens_before(a, b);
//   q.get_causal_graph(a, b);
//
// The distributed, multi-threaded deployment (Kafka-style queues between the
// stages, multiple encoder workers) lives in core/pipeline.h and produces an
// identical graph.
#pragma once

#include <memory>
#include <optional>

#include "core/causal_query.h"
#include "core/execution_graph.h"
#include "core/inter_encoder.h"
#include "core/intra_encoder.h"
#include "core/logical_clocks.h"
#include "event/event.h"

namespace horus {

class Horus {
 public:
  struct Options {
    TimelineGranularity granularity = TimelineGranularity::kProcess;
    /// VC storage backend for the clock table (see ClockMode).
    ClockMode clock_mode = ClockMode::kFlat;
    /// Sparse mode keyframe cadence (ClockTable docs); ignored in flat mode.
    std::int32_t keyframe_interval = ClockTable::kDefaultKeyframeInterval;
  };

  Horus() : Horus(Options{}) {}
  explicit Horus(Options options);

  Horus(const Horus&) = delete;
  Horus& operator=(const Horus&) = delete;

  /// Feeds one event into the processing pipeline.
  void ingest(Event event);

  /// Sink adapter for wiring into EventSinkFn-based producers.
  [[nodiscard]] EventSinkFn sink();

  /// Flushes both encoder stages (persisting buffered events and causal
  /// pairs) and incrementally assigns logical time to the new events.
  /// Safe to call repeatedly; cost scales with the events added since the
  /// previous call.
  void seal();

  [[nodiscard]] ExecutionGraph& graph() noexcept { return graph_; }
  [[nodiscard]] const ExecutionGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const ClockTable& clocks() const noexcept {
    return assigner_.clocks();
  }
  /// Causal query engine over the sealed graph. Pass QueryOptions{.threads}
  /// to fan Q2 out across the shared thread pool.
  [[nodiscard]] CausalQueryEngine query(QueryOptions options = {}) const {
    return CausalQueryEngine(graph_, assigner_.clocks(), options);
  }
  [[nodiscard]] IntraProcessEncoder& intra() noexcept { return intra_; }
  [[nodiscard]] InterProcessEncoder& inter() noexcept { return inter_; }

  /// Graph node of an ingested event.
  [[nodiscard]] std::optional<graph::NodeId> node_of(EventId id) const {
    return graph_.node_of(id);
  }

 private:
  ExecutionGraph graph_;
  InterProcessEncoder inter_;
  IntraProcessEncoder intra_;
  LogicalClockAssigner assigner_;
};

}  // namespace horus
