// Execution-graph validator: checks the structural invariants that the
// encoders and the clock assigner guarantee. Used by tests, by operators
// auditing a stored trace, and as a debugging aid when writing new causality
// rules.
//
// Invariants checked:
//   V1  acyclicity — the stored graph is a DAG;
//   V2  timeline chains — the "NEXT" edges of each timeline form a single
//       path, ordered by (timestamp, event id);
//   V3  HB edge well-formedness — every "HB" edge connects events a known
//       causality rule could pair: SND->RCV with same channel and
//       overlapping byte ranges, CONNECT->ACCEPT with same channel,
//       CREATE/FORK->START and END->JOIN with matching thread identity;
//   V4  clock soundness — if clocks are assigned: LC strictly increases
//       along every edge, and each timeline's positions are 1..k in chain
//       order.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/execution_graph.h"
#include "core/logical_clocks.h"

namespace horus {

struct ValidationIssue {
  std::string invariant;  ///< "V1".."V4"
  std::string detail;
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;

  [[nodiscard]] bool ok() const noexcept { return issues.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Validates the graph structure (V1-V3).
[[nodiscard]] ValidationReport validate_graph(const ExecutionGraph& graph);

/// Validates the graph plus assigned clocks (V1-V4).
[[nodiscard]] ValidationReport validate_graph(const ExecutionGraph& graph,
                                              const ClockTable& clocks);

/// Ingress check for one decoded event, applied by the pipeline before the
/// event enters the encoders: a violating event can never satisfy V2/V3
/// downstream, so it is diverted to the dead-letter topic instead of
/// poisoning the graph. Returns a human-readable reason, or nullopt when
/// the event is admissible.
[[nodiscard]] std::optional<std::string> validate_event(const Event& event);

}  // namespace horus
