#include "core/causal_query.h"

#include <algorithm>
#include <chrono>

#include "core/chain_index.h"
#include "graph/segment.h"
#include "graph/traversal.h"
#include "obs/metrics.h"

namespace horus {

namespace {

using QueryClock = std::chrono::steady_clock;

double seconds_since(QueryClock::time_point start) {
  return std::chrono::duration<double>(QueryClock::now() - start).count();
}

/// Registry series shared by both Q2 implementations. Resolved once per
/// process; each query flushes its locally accumulated stage costs here in
/// one shot — never per candidate, so the <5% bench budget stays intact.
struct Q2Metrics {
  obs::Histogram& plan_seconds;
  obs::Histogram& prune_seconds;
  obs::Histogram& traverse_seconds;
  obs::Counter& queries;
  obs::Counter& admitted;
  obs::Counter& rejected;

  static const Q2Metrics& get() {
    static const Q2Metrics metrics = [] {
      obs::Registry& r = obs::Registry::global();
      obs::Family<obs::Histogram>& stages = r.histograms(
          "horus_query_stage_seconds", "Q2 stage latency (plan/prune/traverse)");
      return Q2Metrics{
          stages.with({{"stage", "plan"}}),
          stages.with({{"stage", "prune"}}),
          stages.with({{"stage", "traverse"}}),
          r.counter("horus_query_q2_total", "getCausalGraph queries run"),
          r.counter("horus_query_prune_admitted_total",
                    "Candidates surviving the VC prune"),
          r.counter("horus_query_prune_rejected_total",
                    "Candidates removed by the VC prune"),
      };
    }();
    return metrics;
  }
};

}  // namespace

// No profile hook here: these are the fig7 hot primitives (~60ns), and
// even an untaken branch is measurable. The horus.happensBefore procedure
// accounts the comparison at the query layer instead. On a segmented store
// the per-segment VC summary gets first refusal: when the summary of b's
// segment proves no node there is causally after a, the clock table is
// never consulted (the monolithic path is the original single compare).
bool CausalQueryEngine::happens_before(graph::NodeId a,
                                       graph::NodeId b) const {
  if (const graph::SegmentManager* segments = graph_.store().segments()) {
    if (segments->summary_rules_out_hb(clocks_.timeline_of(a),
                                       clocks_.position(a), b)) {
      return false;
    }
  }
  return clocks_.happens_before(a, b);
}

bool CausalQueryEngine::happens_before_vc(graph::NodeId a,
                                          graph::NodeId b) const {
  return clocks_.vc_less(a, b);
}

void CausalQueryEngine::finalize(std::vector<graph::NodeId> kept,
                                 graph::NodeId a, graph::NodeId b,
                                 bool only_logs,
                                 CausalGraphResult& result) const {
  const graph::GraphStore& store = graph_.store();
  QueryGuard* guard = options_.guard;

  if (only_logs) {
    std::erase_if(kept, [&](graph::NodeId v) {
      if (v == a || v == b) return false;
      return store.node_label(v) != "LOG";
    });
  }

  // Stable causal presentation order: Lamport clock, node id as tiebreaker.
  std::sort(kept.begin(), kept.end(), [&](graph::NodeId x, graph::NodeId y) {
    const auto lx = clocks_.lamport(x);
    const auto ly = clocks_.lamport(y);
    if (lx != ly) return lx < ly;
    return x < y;
  });

  // Induced edge set. The membership bitmap is written before the fan-out
  // and only read inside it.
  std::vector<bool> in_set;
  graph::NodeId max_id = 0;
  for (const graph::NodeId v : kept) max_id = std::max(max_id, v);
  in_set.resize(static_cast<std::size_t>(max_id) + 1, false);
  for (const graph::NodeId v : kept) in_set[v] = true;

  const unsigned threads = options_.effective_threads();
  if (threads <= 1 || kept.size() < options_.min_parallel_items) {
    for (const graph::NodeId v : kept) {
      if (guard != nullptr && !guard->keep_going()) {
        result.truncated = true;
        break;
      }
      for (const graph::Edge& e : store.out_edges(v)) {
        if (e.to < in_set.size() && in_set[e.to]) {
          result.edges.emplace_back(v, e.to);
        }
      }
    }
  } else {
    // Per-chunk edge vectors over the sorted node list, concatenated in
    // chunk order — identical edge order to the sequential loop.
    ThreadPool& pool = options_.effective_pool();
    const std::size_t grain = 1024;
    const std::size_t chunks = ThreadPool::chunk_count(kept.size(), grain);
    std::vector<std::vector<std::pair<graph::NodeId, graph::NodeId>>> partial(
        chunks);
    pool.parallel_for(kept.size(), grain, threads,
                      [&](ThreadPool::ChunkRange chunk) {
                        if (guard != nullptr && !guard->keep_going()) return;
                        auto& local = partial[chunk.index];
                        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
                          const graph::NodeId v = kept[i];
                          for (const graph::Edge& e : store.out_edges(v)) {
                            if (e.to < in_set.size() && in_set[e.to]) {
                              local.emplace_back(v, e.to);
                            }
                          }
                        }
                      });
    for (const auto& local : partial) {
      result.edges.insert(result.edges.end(), local.begin(), local.end());
    }
    if (guard != nullptr && guard->stopped()) result.truncated = true;
  }

  result.nodes = std::move(kept);
}

CausalGraphResult CausalQueryEngine::get_causal_graph(graph::NodeId a,
                                                      graph::NodeId b,
                                                      bool only_logs) const {
  CausalGraphResult result;
  const graph::GraphStore& store = graph_.store();

  const std::int64_t lc_a = clocks_.lamport(a);
  const std::int64_t lc_b = clocks_.lamport(b);
  if (lc_a == 0 || lc_b == 0 || lc_a > lc_b) return result;
  if (a != b && !clocks_.happens_before(a, b)) return result;

  // Segmented store: block eviction for the query's lifetime (spans into
  // node payloads stay valid) and build the per-segment admissibility memo.
  graph::SegmentManager* segments = store.segments();
  graph::SegmentManager::ReadHold hold;
  graph::SegmentManager::Q2Pruner pruner;
  if (segments != nullptr) {
    hold = segments->read_hold();
    std::vector<std::int32_t> vc_scratch;
    pruner = segments->q2_pruner(a, b, lc_a, lc_b, clocks_.timeline_of(a),
                                 clocks_.position(a),
                                 clocks_.vc_span(b, vc_scratch));
  }

  // Chain-decomposition pruning oracle: two relaxations up front replace
  // every per-candidate VC comparison below (exact — the causal cut is a
  // per-timeline position interval).
  std::vector<std::int32_t> chain_fwd;
  std::vector<std::int32_t> chain_back;
  const ChainIndex* chains = options_.chain_index;
  if (chains != nullptr) {
    chains->forward_bounds(a, chain_fwd);
    chains->backward_bounds(b, chain_back);
  }

  // Stage wall times are taken only under --profile: a steady_clock read
  // between stages is an optimizer barrier, and four of them cost ~20% on
  // the smallest fig8 case. The registry counters below stay unconditional.
  const bool timed = options_.profile != nullptr;

  // Step 1 (plan): LC-bounded over-approximation via the ordered index,
  // addressed by the pre-resolved key id (no string hashing on the query
  // path).
  const auto plan_start = timed ? QueryClock::now() : QueryClock::time_point{};
  std::vector<graph::NodeId> candidates =
      store.range_scan(graph_.keys().lamport, lc_a, lc_b);
  result.lc_candidates = candidates.size();

  // Whole-segment skip before the per-node VC prune: a candidate whose
  // segment summary proves it cannot lie between a and b never reaches the
  // clock table. Order is preserved (erase_if is stable), so downstream
  // output is byte-identical to the unpruned scan.
  if (pruner.active()) {
    std::erase_if(candidates,
                  [&](graph::NodeId v) { return !pruner.admits(v); });
  }

  // Guardrails: the candidate list *is* the visited set of this engine.
  // Charging it up front bounds the prune; a tripped budget shrinks the
  // list to the admitted prefix so the partial result honors the limit.
  QueryGuard* guard = options_.guard;
  if (guard != nullptr && !guard->admit_visited(candidates.size())) {
    result.truncated = true;
    const std::uint64_t budget = guard->limits().max_visited_nodes;
    if (budget != 0 && candidates.size() > budget) {
      candidates.resize(static_cast<std::size_t>(budget));
    } else if (guard->limit_hit() != QueryGuard::Limit::kVisited) {
      candidates.clear();  // deadline/cancel: stop doing work outright
    }
  }
  const double plan_seconds = timed ? seconds_since(plan_start) : 0.0;
  const auto prune_start = timed ? QueryClock::now() : QueryClock::time_point{};

  // Step 2: vector-clock pruning of events concurrent with a or b. The
  // prune is a pure per-candidate predicate, so it partitions into fixed
  // chunks whose kept-vectors concatenate in chunk order — identical output
  // to the sequential scan.
  //
  // b's dense VC is reconstructed once: the v->b half of the test is then
  // an O(1) component read (hb(v,b) iff VC(b)[tl(v)] >= pos(v)) even when
  // the sparse backend would otherwise walk v's delta chain per candidate.
  std::vector<std::int32_t> vc_b_scratch;
  const auto vc_b = clocks_.vc_span(b, vc_b_scratch);
  std::vector<graph::NodeId> kept;
  const unsigned threads = options_.effective_threads();
  auto keep = [&](graph::NodeId v) {
    if (v == a || v == b) return true;
    if (chains != nullptr) {
      const std::int32_t t = clocks_.timeline_of(v);
      if (t < 0 || static_cast<std::size_t>(t) >= chain_fwd.size()) {
        return false;
      }
      const std::int32_t p = clocks_.position(v);
      return chain_fwd[static_cast<std::size_t>(t)] <= p &&
             p <= chain_back[static_cast<std::size_t>(t)];
    }
    const std::int32_t tv = clocks_.timeline_of(v);
    if (tv < 0) return false;
    const std::int32_t cb =
        static_cast<std::size_t>(tv) < vc_b.size()
            ? vc_b[static_cast<std::size_t>(tv)]
            : 0;
    if (cb < clocks_.position(v)) return false;  // !hb(v, b)
    return clocks_.happens_before(a, v);
  };
  if (threads <= 1 || candidates.size() < options_.min_parallel_items) {
    kept.reserve(candidates.size());
    for (const graph::NodeId v : candidates) {
      if (guard != nullptr && !guard->keep_going()) {
        result.truncated = true;
        break;
      }
      if (keep(v)) kept.push_back(v);
    }
  } else {
    ThreadPool& pool = options_.effective_pool();
    const std::size_t grain = 2048;
    const std::size_t chunks =
        ThreadPool::chunk_count(candidates.size(), grain);
    std::vector<std::vector<graph::NodeId>> partial(chunks);
    pool.parallel_for(candidates.size(), grain, threads,
                      [&](ThreadPool::ChunkRange chunk) {
                        std::vector<graph::NodeId>& local =
                            partial[chunk.index];
                        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
                          if (guard != nullptr && (i - chunk.begin) % 256 == 0 &&
                              !guard->keep_going()) {
                            return;
                          }
                          if (keep(candidates[i])) {
                            local.push_back(candidates[i]);
                          }
                        }
                      });
    if (guard != nullptr && guard->stopped()) result.truncated = true;
    std::size_t total = 0;
    for (const auto& local : partial) total += local.size();
    kept.reserve(total);
    for (const auto& local : partial) {
      kept.insert(kept.end(), local.begin(), local.end());
    }
  }
  const double prune_seconds = timed ? seconds_since(prune_start) : 0.0;
  const std::uint64_t admitted = kept.size();
  const std::uint64_t rejected = candidates.size() - kept.size();

  const auto traverse_start =
      timed ? QueryClock::now() : QueryClock::time_point{};
  finalize(std::move(kept), a, b, only_logs, result);
  const double traverse_seconds = timed ? seconds_since(traverse_start) : 0.0;

  // One flush per query. Counters are unconditional; the stage histograms
  // only receive observations from profiled queries (the wall times do not
  // exist otherwise).
  const Q2Metrics& metrics = Q2Metrics::get();
  metrics.queries.inc();
  metrics.admitted.inc(admitted);
  metrics.rejected.inc(rejected);
  if (timed) {
    metrics.plan_seconds.observe(plan_seconds);
    metrics.prune_seconds.observe(prune_seconds);
    metrics.traverse_seconds.observe(traverse_seconds);
    options_.profile->add_plan(plan_seconds, result.lc_candidates);
    options_.profile->add_prune(prune_seconds, admitted, rejected);
    options_.profile->add_traverse(traverse_seconds, result.nodes.size(),
                                   result.edges.size());
  }
  return result;
}

CausalGraphResult CausalQueryEngine::get_causal_graph_traversal(
    graph::NodeId a, graph::NodeId b, bool only_logs) const {
  CausalGraphResult result;

  const std::int64_t lc_a = clocks_.lamport(a);
  const std::int64_t lc_b = clocks_.lamport(b);
  if (lc_a == 0 || lc_b == 0 || lc_a > lc_b) return result;
  if (a != b && !clocks_.happens_before(a, b)) return result;

  // Segmented store: same eviction hold + segment memo as get_causal_graph;
  // the flood's admit predicate consults the memo before the VC compares.
  graph::SegmentManager* segments = graph_.store().segments();
  graph::SegmentManager::ReadHold hold;
  graph::SegmentManager::Q2Pruner pruner;
  if (segments != nullptr) {
    hold = segments->read_hold();
    std::vector<std::int32_t> vc_scratch;
    pruner = segments->q2_pruner(a, b, lc_a, lc_b, clocks_.timeline_of(a),
                                 clocks_.position(a),
                                 clocks_.vc_span(b, vc_scratch));
  }

  // Chain bounds computed once; the flood's admit predicate then tests a
  // per-timeline position interval instead of two VC comparisons per node.
  std::vector<std::int32_t> chain_fwd;
  std::vector<std::int32_t> chain_back;
  const ChainIndex* chains = options_.chain_index;
  if (chains != nullptr) {
    chains->forward_bounds(a, chain_fwd);
    chains->backward_bounds(b, chain_back);
  }

  // Pruned double flood: every node on a causal path from a to b satisfies
  // the admit predicate, and (prefix/suffix closure of the cut) is reachable
  // from a / reaches b through admitted nodes only, so the floods explore
  // exactly the cut.
  graph::ParallelOptions traversal_options;
  traversal_options.threads = options_.threads;
  traversal_options.pool = options_.pool;
  traversal_options.guard = options_.guard;

  // Same gating as get_causal_graph: stage clocks only under --profile.
  const bool timed = options_.profile != nullptr;
  const auto prune_start = timed ? QueryClock::now() : QueryClock::time_point{};
  // Same single b-side reconstruction as get_causal_graph: the flood tests
  // hb(v,b) against this span instead of walking v's clock per visit.
  std::vector<std::int32_t> vc_b_scratch;
  const auto vc_b = clocks_.vc_span(b, vc_b_scratch);
  graph::SubgraphResult between = graph::between_subgraph_parallel(
      graph_.store(), a, b, traversal_options, [&](graph::NodeId v) {
        if (v == a || v == b) return true;
        if (pruner.active() && !pruner.admits(v)) return false;
        if (chains != nullptr) {
          const std::int32_t t = clocks_.timeline_of(v);
          if (t < 0 || static_cast<std::size_t>(t) >= chain_fwd.size()) {
            return false;
          }
          const std::int32_t p = clocks_.position(v);
          return chain_fwd[static_cast<std::size_t>(t)] <= p &&
                 p <= chain_back[static_cast<std::size_t>(t)];
        }
        const std::int32_t tv = clocks_.timeline_of(v);
        if (tv < 0) return false;
        const std::int32_t cb =
            static_cast<std::size_t>(tv) < vc_b.size()
                ? vc_b[static_cast<std::size_t>(tv)]
                : 0;
        if (cb < clocks_.position(v)) return false;  // !hb(v, b)
        return clocks_.happens_before(a, v);
      });
  result.lc_candidates = between.visited;
  result.truncated = between.truncated;
  // The pruned flood fuses planning and pruning: visited nodes stand in for
  // candidates, non-admitted visits for rejections.
  const double prune_seconds = timed ? seconds_since(prune_start) : 0.0;
  const std::uint64_t admitted = between.nodes.size();
  const std::uint64_t rejected =
      between.visited >= between.nodes.size()
          ? between.visited - between.nodes.size()
          : 0;

  const auto traverse_start =
      timed ? QueryClock::now() : QueryClock::time_point{};
  finalize(std::move(between.nodes), a, b, only_logs, result);
  const double traverse_seconds = timed ? seconds_since(traverse_start) : 0.0;

  const Q2Metrics& metrics = Q2Metrics::get();
  metrics.queries.inc();
  metrics.admitted.inc(admitted);
  metrics.rejected.inc(rejected);
  if (timed) {
    metrics.prune_seconds.observe(prune_seconds);
    metrics.traverse_seconds.observe(traverse_seconds);
    options_.profile->add_plan(0.0, between.visited);
    options_.profile->add_prune(prune_seconds, admitted, rejected);
    options_.profile->add_traverse(traverse_seconds, result.nodes.size(),
                                   result.edges.size());
  }
  return result;
}

}  // namespace horus
