#include "core/causal_query.h"

#include <algorithm>

namespace horus {

bool CausalQueryEngine::happens_before(graph::NodeId a,
                                       graph::NodeId b) const {
  return clocks_.happens_before(a, b);
}

bool CausalQueryEngine::happens_before_vc(graph::NodeId a,
                                          graph::NodeId b) const {
  return clocks_.vc_less(a, b);
}

CausalGraphResult CausalQueryEngine::get_causal_graph(graph::NodeId a,
                                                      graph::NodeId b,
                                                      bool only_logs) const {
  CausalGraphResult result;
  const graph::GraphStore& store = graph_.store();

  const std::int64_t lc_a = clocks_.lamport(a);
  const std::int64_t lc_b = clocks_.lamport(b);
  if (lc_a == 0 || lc_b == 0 || lc_a > lc_b) return result;
  if (a != b && !clocks_.happens_before(a, b)) return result;

  // Step 1: LC-bounded over-approximation via the ordered index, addressed
  // by the pre-resolved key id (no string hashing on the query path).
  const std::vector<graph::NodeId> candidates =
      store.range_scan(graph_.keys().lamport, lc_a, lc_b);
  result.lc_candidates = candidates.size();

  // Step 2: vector-clock pruning of events concurrent with a or b.
  std::vector<graph::NodeId> kept;
  kept.reserve(candidates.size());
  for (const graph::NodeId v : candidates) {
    if (v == a || v == b) {
      kept.push_back(v);
      continue;
    }
    if (clocks_.happens_before(a, v) && clocks_.happens_before(v, b)) {
      kept.push_back(v);
    }
  }

  if (only_logs) {
    std::erase_if(kept, [&](graph::NodeId v) {
      if (v == a || v == b) return false;
      return store.node_label(v) != "LOG";
    });
  }

  // Stable causal presentation order: Lamport clock, node id as tiebreaker.
  std::sort(kept.begin(), kept.end(), [&](graph::NodeId x, graph::NodeId y) {
    const auto lx = clocks_.lamport(x);
    const auto ly = clocks_.lamport(y);
    if (lx != ly) return lx < ly;
    return x < y;
  });

  // Step 3: induced edge set.
  std::vector<bool> in_set;
  graph::NodeId max_id = 0;
  for (const graph::NodeId v : kept) max_id = std::max(max_id, v);
  in_set.resize(static_cast<std::size_t>(max_id) + 1, false);
  for (const graph::NodeId v : kept) in_set[v] = true;
  for (const graph::NodeId v : kept) {
    for (const graph::Edge& e : store.out_edges(v)) {
      if (e.to < in_set.size() && in_set[e.to]) {
        result.edges.emplace_back(v, e.to);
      }
    }
  }

  result.nodes = std::move(kept);
  return result;
}

}  // namespace horus
