// Causal query engine — logical-time-accelerated implementations of the two
// fundamental refinement queries of Section V:
//
//  Q1  may event a causally affect event b?
//      Answered with one vector-clock comparison — no traversal at all.
//      (Baseline: breadth-first shortest path, graph/traversal.h.)
//
//  Q2  what are the causal paths between a and b?
//      Answered in three index-driven steps:
//        V'  = { v : LC(a) <= LC(v) <= LC(b) }   — ordered-index range scan
//        V'' = { v in V' : VC(a) < VC(v) < VC(b) } — vector-clock pruning
//        E'' = { x->y in E : x,y in V'' }          — induced edges
//      (Baseline: exhaustive all-paths enumeration.)
//
// Both Q2 steps fan out across the shared thread pool when QueryOptions
// requests more than one thread: the VC prune partitions the LC-ordered
// candidate list and the induced-edge step partitions the kept node list,
// each into fixed chunks whose outputs concatenate in chunk order — so the
// result is byte-identical to the sequential engine for any thread count.
//
// These are exposed to the query language as the registered procedures
// horus.happensBefore() and horus.getCausalGraph().
#pragma once

#include <cstdint>
#include <vector>

#include "common/query_guard.h"
#include "common/thread_pool.h"
#include "core/execution_graph.h"
#include "core/logical_clocks.h"
#include "obs/query_profile.h"

namespace horus {

class ChainIndex;

/// Parallelism knob threaded from the CLI/benches down to the query
/// engines. The default is the sequential engine; `threads = 0` means "use
/// everything" (ThreadPool::default_parallelism()).
struct QueryOptions {
  /// Max threads a single query may use (caller + pool helpers).
  unsigned threads = 1;
  /// Pool supplying the helpers; nullptr = ThreadPool::shared().
  ThreadPool* pool = nullptr;
  /// Below this many items a chunked loop stays sequential (fan-out costs
  /// more than it saves). Tests drop it to 1 to force the parallel paths on
  /// small graphs.
  std::size_t min_parallel_items = 4096;
  /// When set, engines write a per-stage cost breakdown here (parse, plan,
  /// prune admit/reject, traversal) — `horus query --profile`. Null keeps
  /// the hot paths at a single pointer test.
  obs::QueryProfile* profile = nullptr;
  /// Optional shared guardrails (deadline / visited-node budget /
  /// cancellation). When it trips, engines stop cooperatively and return a
  /// partial result with `truncated` set instead of running away on
  /// adversarial graphs. Null keeps the hot paths at a single pointer test.
  QueryGuard* guard = nullptr;
  /// Lower MATCH/WHERE query prefixes into a typed plan (src/query/planner.h)
  /// executed batch-at-a-time over column spans. Query shapes the planner
  /// cannot prove row-identical fall back to the tuple-at-a-time evaluator
  /// automatically; false forces the legacy path everywhere (A/B benches,
  /// the plan-differential oracle suite).
  bool use_planner = true;
  /// Optional chain-decomposition reachability index (core/chain_index.h).
  /// When set, both Q2 engines replace the per-candidate vector-clock
  /// comparisons with two chain-bound relaxations computed once per query —
  /// an exact alternative pruning oracle (identical results; the `clocks`
  /// differential suite pins this). The index must have been built from the
  /// same graph + clock assignment the query runs against.
  const ChainIndex* chain_index = nullptr;

  [[nodiscard]] unsigned effective_threads() const {
    return threads == 0 ? ThreadPool::default_parallelism() : threads;
  }
  [[nodiscard]] ThreadPool& effective_pool() const {
    return pool != nullptr ? *pool : ThreadPool::shared();
  }
};

struct CausalGraphResult {
  /// Nodes of the causal sub-graph between the two query events, inclusive
  /// of the endpoints, sorted by Lamport clock (a stable causal order).
  std::vector<graph::NodeId> nodes;
  /// Induced edges between nodes of the result set (raw node ids).
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  /// Size of the LC-bounded over-approximation V' (instrumentation: how much
  /// the VC pruning step removed). For the traversal-based variant this is
  /// the number of nodes the pruned floods expanded instead.
  std::size_t lc_candidates = 0;
  /// True when QueryOptions::guard tripped mid-query: nodes/edges are a
  /// well-formed subset of the full answer (consult the guard's reason()).
  bool truncated = false;
};

class CausalQueryEngine {
 public:
  CausalQueryEngine(const ExecutionGraph& graph, const ClockTable& clocks,
                    QueryOptions options = {})
      : graph_(graph), clocks_(clocks), options_(options) {}

  /// Q1: true iff `a` happens-before `b`.
  [[nodiscard]] bool happens_before(graph::NodeId a, graph::NodeId b) const;

  /// Q1 under its procedure name: may `a` causally affect `b`?
  [[nodiscard]] bool is_causally_related(graph::NodeId a,
                                         graph::NodeId b) const {
    return happens_before(a, b);
  }

  /// Q1 via the paper's literal formulation (full VC(a) < VC(b) comparison);
  /// same result as happens_before(), O(#timelines).
  [[nodiscard]] bool happens_before_vc(graph::NodeId a,
                                       graph::NodeId b) const;

  /// Q2: the causal sub-graph between `a` and `b`.
  /// @param only_logs restrict the node set to LOG events (plus endpoints),
  ///        matching the getCausalGraph(start, end, onlyLogs) procedure used
  ///        in the paper's case-study query.
  [[nodiscard]] CausalGraphResult get_causal_graph(graph::NodeId a,
                                                   graph::NodeId b,
                                                   bool only_logs = false) const;

  /// Q2 computed the traversal way, but with the vector-clock prune applied
  /// per discovered edge: descendants-of-a and ancestors-of-b floods run as
  /// concurrent frontier-parallel tasks, each admitting only nodes v with
  /// VC(a) < VC(v) < VC(b). Because the causal cut is closed under path
  /// prefixes/suffixes, the pruned floods never leave the cut, and the
  /// result (nodes and edges) is identical to get_causal_graph() — the
  /// built-in second implementation backing the differential test oracle.
  [[nodiscard]] CausalGraphResult get_causal_graph_traversal(
      graph::NodeId a, graph::NodeId b, bool only_logs = false) const;

  [[nodiscard]] const QueryOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Shared tail of both Q2 implementations: only-logs filter, causal sort,
  /// induced edge set.
  void finalize(std::vector<graph::NodeId> kept, graph::NodeId a,
                graph::NodeId b, bool only_logs,
                CausalGraphResult& result) const;

  const ExecutionGraph& graph_;
  const ClockTable& clocks_;
  QueryOptions options_;
};

}  // namespace horus
