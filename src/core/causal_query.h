// Causal query engine — logical-time-accelerated implementations of the two
// fundamental refinement queries of Section V:
//
//  Q1  may event a causally affect event b?
//      Answered with one vector-clock comparison — no traversal at all.
//      (Baseline: breadth-first shortest path, graph/traversal.h.)
//
//  Q2  what are the causal paths between a and b?
//      Answered in three index-driven steps:
//        V'  = { v : LC(a) <= LC(v) <= LC(b) }   — ordered-index range scan
//        V'' = { v in V' : VC(a) < VC(v) < VC(b) } — vector-clock pruning
//        E'' = { x->y in E : x,y in V'' }          — induced edges
//      (Baseline: exhaustive all-paths enumeration.)
//
// These are exposed to the query language as the registered procedures
// horus.happensBefore() and horus.getCausalGraph().
#pragma once

#include <cstdint>
#include <vector>

#include "core/execution_graph.h"
#include "core/logical_clocks.h"

namespace horus {

struct CausalGraphResult {
  /// Nodes of the causal sub-graph between the two query events, inclusive
  /// of the endpoints, sorted by Lamport clock (a stable causal order).
  std::vector<graph::NodeId> nodes;
  /// Induced edges between nodes of the result set (raw node ids).
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  /// Size of the LC-bounded over-approximation V' (instrumentation: how much
  /// the VC pruning step removed).
  std::size_t lc_candidates = 0;
};

class CausalQueryEngine {
 public:
  CausalQueryEngine(const ExecutionGraph& graph, const ClockTable& clocks)
      : graph_(graph), clocks_(clocks) {}

  /// Q1: true iff `a` happens-before `b`.
  [[nodiscard]] bool happens_before(graph::NodeId a, graph::NodeId b) const;

  /// Q1 via the paper's literal formulation (full VC(a) < VC(b) comparison);
  /// same result as happens_before(), O(#timelines).
  [[nodiscard]] bool happens_before_vc(graph::NodeId a,
                                       graph::NodeId b) const;

  /// Q2: the causal sub-graph between `a` and `b`.
  /// @param only_logs restrict the node set to LOG events (plus endpoints),
  ///        matching the getCausalGraph(start, end, onlyLogs) procedure used
  ///        in the paper's case-study query.
  [[nodiscard]] CausalGraphResult get_causal_graph(graph::NodeId a,
                                                   graph::NodeId b,
                                                   bool only_logs = false) const;

 private:
  const ExecutionGraph& graph_;
  const ClockTable& clocks_;
};

}  // namespace horus
