// Inter-Process HB Encoder — second stage of the Horus pipeline
// (Section IV-B of the paper).
//
// Computes happens-before relationships *between* processes. Unlike the
// intra stage, this never relies on timestamps: causality comes from message
// identity — event attributes captured by the kernel probes that
// unequivocally tie a departure to an arrival. Built-in rules:
//
//   SND -> RCV       same channel, overlapping byte ranges (TCP delivery &
//                    ordering guarantees; one SND may pair with several
//                    partial RCVs)
//   CONNECT -> ACCEPT same channel
//   CREATE -> START  parent's create of thread T precedes T's first event
//   FORK -> START    same, for processes
//   END -> JOIN      child T's last event precedes the parent's join on T
//
// The rule set is an open registry (CausalRule interface): new event kinds
// and happens-before sources can be added without touching the encoder —
// the extensibility the paper calls out.
//
// The encoder is a streaming operator: incomplete pairs are kept in memory
// until the matching event is consumed from the queue; completed pairs are
// buffered and flushed to the graph in periodic batches.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/execution_graph.h"
#include "event/event.h"

namespace horus {

/// A completed inter-process causal pair.
struct CausalPair {
  EventId from = kInvalidEventId;
  EventId to = kInvalidEventId;
  std::string_view rule;  ///< name of the producing rule (static storage)
};

/// One happens-before source. Implementations keep whatever pending state
/// they need; on_event() reports every pair completed by the new event.
class CausalRule {
 public:
  virtual ~CausalRule() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Feeds one event (in per-timeline causal order); appends completed
  /// pairs to `out`.
  virtual void on_event(const Event& event, std::vector<CausalPair>& out) = 0;

  /// Number of events currently waiting for their counterpart.
  [[nodiscard]] virtual std::size_t pending() const noexcept = 0;

  /// Appends the ids of every event whose state must survive a crash of
  /// this encoder: re-feeding exactly those events into a fresh rule
  /// instance (in the appended order) must reproduce the pending state.
  /// Used by the pipeline's write-ahead spill. The default reports nothing —
  /// a rule keeping no pending state, or an external rule that opts out of
  /// durability, needs no override.
  virtual void collect_pending(std::vector<EventId>& out) const {
    (void)out;
  }
};

/// SND->RCV pairing by channel + byte-range overlap.
class MessageDeliveryRule final : public CausalRule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "message-delivery";
  }
  void on_event(const Event& event, std::vector<CausalPair>& out) override;
  [[nodiscard]] std::size_t pending() const noexcept override;
  void collect_pending(std::vector<EventId>& out) const override;

 private:
  struct Range {
    EventId id;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;  ///< exclusive
  };
  struct ChannelState {
    std::deque<Range> sends;     ///< unmatched or partially matched sends
    std::deque<Range> receives;  ///< receives waiting for their send
  };
  std::unordered_map<ChannelId, ChannelState> channels_;
  std::size_t pending_ = 0;

  void match(ChannelState& state, std::vector<CausalPair>& out);
};

/// CONNECT->ACCEPT pairing by channel.
class ConnectionRule final : public CausalRule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "connection";
  }
  void on_event(const Event& event, std::vector<CausalPair>& out) override;
  [[nodiscard]] std::size_t pending() const noexcept override;
  void collect_pending(std::vector<EventId>& out) const override;

 private:
  std::unordered_map<ChannelId, EventId> connects_;
  std::unordered_map<ChannelId, EventId> accepts_;
};

/// CREATE/FORK->START and END->JOIN pairing by child-thread identity.
class LifecycleRule final : public CausalRule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lifecycle";
  }
  void on_event(const Event& event, std::vector<CausalPair>& out) override;
  [[nodiscard]] std::size_t pending() const noexcept override;
  /// Includes ends_ even though pending() does not count them: a JOIN
  /// arriving only after a restart still needs its END -> JOIN edge.
  void collect_pending(std::vector<EventId>& out) const override;

 private:
  std::unordered_map<ThreadRef, EventId> creates_;  ///< by child thread
  std::unordered_map<ThreadRef, EventId> starts_;   ///< by own thread
  std::unordered_map<ThreadRef, EventId> ends_;     ///< by own thread
  std::unordered_map<ThreadRef, std::vector<EventId>> joins_;  ///< by child
};

class InterProcessEncoder {
 public:
  /// Constructs with the built-in rule set.
  explicit InterProcessEncoder(ExecutionGraph& graph);

  /// Registers an additional causality rule.
  void add_rule(std::unique_ptr<CausalRule> rule);

  /// Feeds one event (must already be persisted by the intra stage).
  void on_event(const Event& event);

  /// Flushes buffered complete pairs as HB edges into the graph. Pairs
  /// whose endpoint nodes are not in the graph yet (the relationship
  /// stream ran ahead of the node stream during a post-restore replay)
  /// stay buffered for a later flush; see buffered().
  void flush();

  /// Enables pending-state capture: on_event() keeps a copy of each event
  /// so snapshot_pending() can materialize the events behind unmatched
  /// pending state. Off by default (no copies, no memory cost); the
  /// pipeline turns it on when a write-ahead spill directory is configured.
  void set_spill_capture(bool on) noexcept { spill_capture_ = on; }

  /// The events whose rule state is still pending, in an order safe to
  /// re-feed through a fresh encoder (see CausalRule::collect_pending).
  /// Prunes the capture cache down to exactly this set as a side effect.
  /// Requires spill capture; events fed before it was enabled are absent.
  [[nodiscard]] std::vector<Event> snapshot_pending();

  /// Completed-but-unflushed pairs (including pairs flush() deferred while
  /// waiting for their nodes to be replayed). Pipeline::drain() treats a
  /// nonzero post-flush value as "not yet drained".
  [[nodiscard]] std::size_t buffered() const noexcept {
    return complete_.size();
  }
  /// Events still waiting for a counterpart, across all rules.
  [[nodiscard]] std::size_t pending() const noexcept;
  /// Total HB edges persisted.
  [[nodiscard]] std::uint64_t edges_flushed() const noexcept {
    return edges_flushed_;
  }

 private:
  ExecutionGraph& graph_;
  std::vector<std::unique_ptr<CausalRule>> rules_;
  std::vector<CausalPair> complete_;
  std::uint64_t edges_flushed_ = 0;
  bool spill_capture_ = false;
  std::unordered_map<EventId, Event> event_cache_;  ///< spill capture only
};

}  // namespace horus
