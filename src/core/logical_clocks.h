// Logical-time assignment over the stored causal graph (Section V).
//
// Horus augments every event with:
//  - a Lamport logical clock LC, a scalar with  a -> b  =>  LC(a) < LC(b);
//    it is written into the node property `lamportLogicalTime`, which has an
//    ordered database index — LC range scans are the cheap first-stage
//    bound of every causal query;
//  - a Fidge/Mattern vector clock VC with  a -> b  <=>  VC(a) < VC(b); the
//    exact test used to prune the LC over-approximation. Vectors are kept in
//    an in-memory clock table (they are non-scalar and unsuitable for
//    database indexing, as the paper notes).
//
// Assignment is a Kahn-style topological traversal, *incremental* by
// design: a periodic run resumes from the frontier of each timeline and only
// touches events added since the previous run — so the cost scales with the
// number of unprocessed events, not with the total graph size (the property
// measured in Figure 6).
//
// Correct incremental use requires the flush horizon discipline the pipeline
// enforces: when assign() runs, every edge incident to the events being
// assigned must already be persisted. Edges added later between
// already-assigned events would invalidate their clocks; reassign_all()
// recomputes from scratch for such offline scenarios.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/execution_graph.h"

namespace horus {

/// Dense per-node clock storage, indexed by graph::NodeId.
class ClockTable {
 public:
  /// Lamport clock of a node (0 = not yet assigned).
  [[nodiscard]] std::int64_t lamport(graph::NodeId node) const {
    return node < lamport_.size() ? lamport_[node] : 0;
  }

  /// Vector clock of a node. Component i corresponds to timeline i; vectors
  /// may be shorter than the current timeline count (missing components are
  /// zero — timelines discovered later than the event's assignment).
  /// Clocks live in one flat arena (assigned once, append-only); the span
  /// stays valid until reassign_all().
  [[nodiscard]] std::span<const std::int32_t> vc(graph::NodeId node) const {
    if (node >= vc_slots_.size()) return {};
    const VcSlot s = vc_slots_[node];
    return {vc_arena_.data() + s.offset, s.len};
  }

  /// Timeline index of a node (-1 if unassigned).
  [[nodiscard]] std::int32_t timeline_of(graph::NodeId node) const {
    return node < timeline_of_.size() ? timeline_of_[node] : -1;
  }

  /// 1-based position of the node within its timeline.
  [[nodiscard]] std::int32_t position(graph::NodeId node) const {
    return node < position_.size() ? position_[node] : 0;
  }

  [[nodiscard]] bool assigned(graph::NodeId node) const {
    return node < lamport_.size() && lamport_[node] != 0;
  }

  [[nodiscard]] std::size_t timeline_count() const {
    return timeline_names_.size();
  }

  /// Elements in the flat VC arena (times sizeof(int32) = resident bytes);
  /// the clock daemon exports this as the arena-size gauge.
  [[nodiscard]] std::size_t vc_arena_size() const noexcept {
    return vc_arena_.size();
  }
  [[nodiscard]] const std::string& timeline_name(std::int32_t index) const {
    return timeline_names_[static_cast<std::size_t>(index)];
  }

  /// O(1) happens-before test via the Fidge/Mattern property:
  /// a -> b  iff  VC(b)[timeline(a)] >= position(a), for a != b.
  [[nodiscard]] bool happens_before(graph::NodeId a, graph::NodeId b) const;

  /// Full vector comparison VC(a) < VC(b) (component-wise <=, somewhere <).
  /// Equivalent to happens_before(); kept for tests and for the paper's
  /// formulation of Q1.
  [[nodiscard]] bool vc_less(graph::NodeId a, graph::NodeId b) const;

  /// Renders a node's VC as "[c0,c1,...]" padded to the current timeline
  /// count (display/ShiViz export).
  [[nodiscard]] std::string vc_string(graph::NodeId node) const;

  /// Serializes the full table into a framed binary record (magic, length
  /// prefix, CRC-32 trailer). The format pairs with load(); the service
  /// checkpoint writes this next to the graph snapshot so a restarted
  /// daemon resumes incremental assignment instead of recomputing every
  /// clock.
  void save(std::ostream& out) const;

  /// Parses a record written by save(). Throws HorusError on a truncated,
  /// corrupt, or internally inconsistent record (bad magic, short read, CRC
  /// mismatch, slot pointing outside the arena).
  [[nodiscard]] static ClockTable load(std::istream& in);

 private:
  friend class LogicalClockAssigner;

  /// Offset/length of a node's clock inside the flat arena.
  struct VcSlot {
    std::uint32_t offset = 0;
    std::uint32_t len = 0;
  };

  std::vector<std::int64_t> lamport_;
  std::vector<std::int32_t> vc_arena_;  ///< all vector clocks, back to back
  std::vector<VcSlot> vc_slots_;
  std::vector<std::int32_t> timeline_of_;
  std::vector<std::int32_t> position_;
  std::vector<std::string> timeline_names_;
  std::unordered_map<std::string, std::int32_t, graph::StringHash,
                     std::equal_to<>>
      timeline_ids_;
  std::vector<std::int32_t> timeline_sizes_;  ///< events assigned per timeline
};

class LogicalClockAssigner {
 public:
  struct Options {
    /// Also write `lamportLogicalTime` into the graph store (feeding its
    /// ordered index). Disable only for throughput experiments that measure
    /// the traversal alone.
    bool write_lamport_property = true;
  };

  explicit LogicalClockAssigner(ExecutionGraph& graph)
      : LogicalClockAssigner(graph, Options{}) {}
  LogicalClockAssigner(ExecutionGraph& graph, Options options);

  /// Assigns clocks to every node added since the previous call (or to all
  /// nodes on the first call). Returns the number of newly assigned nodes.
  ///
  /// Throws std::logic_error if the unassigned region contains a cycle
  /// (which would mean the encoders produced a non-DAG).
  std::size_t assign();

  /// Drops all state and recomputes every clock from scratch.
  std::size_t reassign_all();

  /// Targeted heal for edges that landed after both endpoints were assigned
  /// (`dirty_roots` = the heads of the violated edges, as found by the clock
  /// daemon's audit). Recomputes Lamport and vector clocks for the forward
  /// causal closure of the roots only — new constraints can only *raise*
  /// clocks, and only downstream of the late edge, so every node outside the
  /// closure keeps its canonical value. Timelines and positions never change
  /// (they derive from per-timeline log order, which edges cannot alter).
  /// Returns the number of nodes recomputed.
  ///
  /// The closure walks out-edges of already-assigned nodes, which in a
  /// segmented store are the recently sealed / active segments — unlike
  /// reassign_all() it does not fault evicted segments back in.
  std::size_t repair(std::span<const graph::NodeId> dirty_roots);

  /// Replaces all assigner state with a table previously produced by
  /// ClockTable::save()/load(). The pool-id cache is invalidated (the
  /// restored table's timeline ids need not match the current store's
  /// interning order); the next assign() resumes incrementally from the
  /// restored frontier.
  void restore(ClockTable table);

  [[nodiscard]] const ClockTable& clocks() const noexcept { return table_; }

 private:
  /// Table timeline id for a store-interned timeline pool id (interning the
  /// name on first sight). Pool ids are append-only, so the cache is stable.
  std::int32_t timeline_for_pool(std::uint32_t pool_id);

  ExecutionGraph& graph_;
  Options options_;
  ClockTable table_;
  std::vector<std::int32_t> timeline_of_pool_;  ///< pool id -> table id cache
};

}  // namespace horus
