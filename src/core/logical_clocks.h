// Logical-time assignment over the stored causal graph (Section V).
//
// Horus augments every event with:
//  - a Lamport logical clock LC, a scalar with  a -> b  =>  LC(a) < LC(b);
//    it is written into the node property `lamportLogicalTime`, which has an
//    ordered database index — LC range scans are the cheap first-stage
//    bound of every causal query;
//  - a Fidge/Mattern vector clock VC with  a -> b  <=>  VC(a) < VC(b); the
//    exact test used to prune the LC over-approximation. Vectors are kept in
//    an in-memory clock table (they are non-scalar and unsuitable for
//    database indexing, as the paper notes).
//
// The table offers two storage backends behind one API (ClockMode):
//
//  - kFlat: every VC is a dense int32 vector in one append-only arena —
//    O(#timelines) per event. Fastest lookups, but the arena dominates
//    resident memory once the workload reaches thousands of timelines.
//  - kSparse: per-timeline "lanes" store each event's VC as the set of
//    components that *changed* relative to its timeline predecessor (a
//    delta), with periodic full keyframes bounding the reconstruction walk.
//    Components are overwhelmingly unchanged between consecutive events of
//    a timeline (only merged-in histories move), so storage collapses to
//    O(churn) instead of O(#timelines) per event. Reconstruction walks the
//    delta chain latest-record-first: the first occurrence of a component
//    is its current value (components only grow along a timeline), and a
//    keyframe terminates the walk.
//
// Assignment is a Kahn-style topological traversal, *incremental* by
// design: a periodic run resumes from the frontier of each timeline and only
// touches events added since the previous run — so the cost scales with the
// number of unprocessed events, not with the total graph size (the property
// measured in Figure 6).
//
// Correct incremental use requires the flush horizon discipline the pipeline
// enforces: when assign() runs, every edge incident to the events being
// assigned must already be persisted. Edges added later between
// already-assigned events would invalidate their clocks; reassign_all()
// recomputes from scratch for such offline scenarios, and repair() heals the
// forward closure of a late edge in place. Delta encoding stays sound under
// repair() because the intra encoder chains consecutive timeline events with
// an explicit edge: a timeline predecessor is always a graph predecessor, so
// the repair closure contains every delta descendant of a raised clock and
// the Kahn order rewrites each delta against its already-final base.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "core/execution_graph.h"

namespace horus {

/// VC storage backend of a ClockTable. Threaded from the CLI / service
/// options down through ClockDaemon and LogicalClockAssigner.
enum class ClockMode : std::uint8_t {
  kFlat = 0,    ///< dense per-event vectors in one flat arena
  kSparse = 1,  ///< per-timeline delta lanes with periodic keyframes
};

[[nodiscard]] constexpr const char* to_string(ClockMode mode) noexcept {
  return mode == ClockMode::kSparse ? "sparse" : "flat";
}

/// Parses "flat" / "sparse"; nullopt on anything else (the CLI turns that
/// into a usage error).
[[nodiscard]] std::optional<ClockMode> parse_clock_mode(std::string_view text);

/// A structurally valid clock-table record whose version or storage mode
/// this binary does not support (e.g. a checkpoint written by a newer
/// build). Distinct from plain HorusError corruption so restore paths can
/// report "upgrade the binary" instead of "your checkpoint is damaged".
class ClockFormatError : public HorusError {
 public:
  using HorusError::HorusError;
};

/// Dense per-node clock storage, indexed by graph::NodeId.
class ClockTable {
 public:
  static constexpr std::int32_t kDefaultKeyframeInterval = 16;

  ClockTable() = default;
  explicit ClockTable(ClockMode mode,
                      std::int32_t keyframe_interval = kDefaultKeyframeInterval)
      : mode_(mode),
        keyframe_interval_(keyframe_interval < 1 ? 1 : keyframe_interval) {}

  [[nodiscard]] ClockMode mode() const noexcept { return mode_; }
  [[nodiscard]] std::int32_t keyframe_interval() const noexcept {
    return keyframe_interval_;
  }

  /// Lamport clock of a node (0 = not yet assigned).
  [[nodiscard]] std::int64_t lamport(graph::NodeId node) const {
    return node < lamport_.size() ? lamport_[node] : 0;
  }

  /// Vector clock of a node as a dense span. Component i corresponds to
  /// timeline i; the span may be shorter than the current timeline count
  /// (missing components are zero — timelines discovered later than the
  /// event's assignment).
  ///
  /// kFlat: a view into the arena (scratch untouched), valid until the next
  /// assign()/repair()/reassign_all(). kSparse: reconstructed into
  /// `scratch`, valid until the caller reuses the scratch. Either way the
  /// span must be consumed before the table or the scratch is written again
  /// — holding it across a mutation is the stale-span bug this API shape
  /// exists to prevent.
  [[nodiscard]] std::span<const std::int32_t> vc_span(
      graph::NodeId node, std::vector<std::int32_t>& scratch) const;

  /// Single component VC(node)[timeline] (0 when absent/unassigned).
  /// kFlat: one arena read. kSparse: delta-chain walk bounded by the
  /// keyframe interval, binary-searching each record.
  [[nodiscard]] std::int32_t vc_component(graph::NodeId node,
                                          std::int32_t timeline) const;

  /// Timeline index of a node (-1 if unassigned).
  [[nodiscard]] std::int32_t timeline_of(graph::NodeId node) const {
    return node < timeline_of_.size() ? timeline_of_[node] : -1;
  }

  /// 1-based position of the node within its timeline.
  [[nodiscard]] std::int32_t position(graph::NodeId node) const {
    return node < position_.size() ? position_[node] : 0;
  }

  [[nodiscard]] bool assigned(graph::NodeId node) const {
    return node < lamport_.size() && lamport_[node] != 0;
  }

  [[nodiscard]] std::size_t timeline_count() const {
    return timeline_names_.size();
  }

  /// Elements in the flat VC arena (0 in sparse mode); kept for the flat
  /// arena-size instrumentation and tests.
  [[nodiscard]] std::size_t vc_arena_size() const noexcept {
    return vc_arena_.size();
  }

  /// Resident bytes of the VC store itself, mode-aware: the flat arena plus
  /// its slots, or the sparse lanes (entries, record offsets, flags, node
  /// map) plus repair overflow records. Shared bookkeeping (lamports,
  /// timeline/position columns) is excluded from both so the two modes
  /// compare like for like; the clock daemon exports this as the
  /// clock-bytes gauge and bench_clocks derives bytes/event from it.
  [[nodiscard]] std::size_t clock_bytes() const noexcept;

  [[nodiscard]] const std::string& timeline_name(std::int32_t index) const {
    return timeline_names_[static_cast<std::size_t>(index)];
  }

  /// O(1) happens-before test via the Fidge/Mattern property:
  /// a -> b  iff  VC(b)[timeline(a)] >= position(a), for a != b.
  /// (Sparse mode pays the bounded vc_component walk instead of O(1).)
  [[nodiscard]] bool happens_before(graph::NodeId a, graph::NodeId b) const;

  /// Full vector comparison VC(a) < VC(b) (component-wise <=, somewhere <).
  /// Equivalent to happens_before(); kept for tests and for the paper's
  /// formulation of Q1.
  [[nodiscard]] bool vc_less(graph::NodeId a, graph::NodeId b) const;

  /// Renders a node's VC as "[c0,c1,...]" padded to the current timeline
  /// count (display/ShiViz export).
  [[nodiscard]] std::string vc_string(graph::NodeId node) const;

  /// Serializes the full table into a framed binary record (magic, length
  /// prefix, CRC-32 trailer). Flat tables write the HORUSVC1 record
  /// unchanged from earlier releases; sparse tables write HORUSVC2 with a
  /// storage-mode byte. The format pairs with load(); the service
  /// checkpoint writes this next to the graph snapshot so a restarted
  /// daemon resumes incremental assignment instead of recomputing every
  /// clock.
  void save(std::ostream& out) const;

  /// Parses a record written by save(). Throws HorusError on a truncated,
  /// corrupt, or internally inconsistent record (bad magic, short read, CRC
  /// mismatch, slot pointing outside the arena), and ClockFormatError on a
  /// structurally sound record whose version or mode byte this binary does
  /// not understand.
  [[nodiscard]] static ClockTable load(std::istream& in);

 private:
  friend class LogicalClockAssigner;

  /// Offset/length of a node's clock inside the flat arena.
  struct VcSlot {
    std::uint32_t offset = 0;
    std::uint32_t len = 0;
  };

  /// Per-timeline delta storage (kSparse). Record r (1-based position r)
  /// occupies entries [rec_end[r-2], rec_end[r-1]) of the entry arrays —
  /// contiguous per timeline, so a reconstruction walk reads backward
  /// through one array instead of chasing pointers across a global arena.
  struct SparseLane {
    std::vector<std::int32_t> entry_tl;   ///< component timeline ids (asc)
    std::vector<std::int32_t> entry_val;  ///< component values
    std::vector<std::uint32_t> rec_end;   ///< exclusive end per position
    std::vector<std::uint8_t> flags;      ///< kKeyframeFlag | kOverflowFlag
  };
  static constexpr std::uint8_t kKeyframeFlag = 1;
  static constexpr std::uint8_t kOverflowFlag = 2;
  /// Entry padding left behind when a repair shrinks a record in place;
  /// walkers skip it, and it sorts after every real timeline id so record
  /// binary searches stay valid.
  static constexpr std::int32_t kPadTimeline =
      std::numeric_limits<std::int32_t>::max();

  using SparseRecord = std::vector<std::pair<std::int32_t, std::int32_t>>;

  /// Invokes fn(timeline, value) for every entry of the delta chain ending
  /// at (timeline t, position pos), latest record first, stopping after the
  /// nearest keyframe. First occurrence of a component is its current
  /// value; max over all occurrences equals it too (components only grow).
  template <typename Fn>
  void walk_sparse(std::int32_t t, std::int32_t pos, Fn&& fn) const;

  /// Reconstructs (t, pos) into `dense` (zero-filled to timeline_count());
  /// returns the used length (max component index + 1).
  std::size_t reconstruct_dense(std::int32_t t, std::int32_t pos,
                                std::vector<std::int32_t>& dense) const;

  /// Appends the VC of node v (dense in `vc`, timeline t, 1-based pos) as a
  /// sparse record: keyframe on the periodic boundary or when the delta
  /// against the timeline predecessor would not be smaller, delta
  /// otherwise. `tp_scratch` is caller-provided dense scratch.
  void append_sparse(graph::NodeId v, std::int32_t t, std::int32_t pos,
                     std::span<const std::int32_t> vc,
                     std::vector<std::int32_t>& tp_scratch);

  /// Rewrites the existing record of v after a repair raised its VC. Keeps
  /// keyframes keyframes (walks of descendants stay bounded), may promote a
  /// grown delta to a keyframe, and spills records that outgrow their lane
  /// window into overflow_ (rare: repairs only).
  void rewrite_sparse(graph::NodeId v, std::int32_t t, std::int32_t pos,
                      std::span<const std::int32_t> vc,
                      std::vector<std::int32_t>& tp_scratch);

  /// Collects the record for (vc, keyframe-or-delta-vs-tp) into `record`.
  /// `tp_len` is the used length of tp_scratch (delta base); pass 0 with
  /// keyframe=true. Returns whether the record ended up a keyframe (deltas
  /// no smaller than the full sparse form are promoted).
  bool build_sparse_record(std::span<const std::int32_t> vc, bool keyframe,
                           const std::vector<std::int32_t>& tp,
                           std::size_t tp_len, SparseRecord& record) const;

  std::vector<std::int64_t> lamport_;
  std::vector<std::int32_t> vc_arena_;  ///< kFlat: all VCs, back to back
  std::vector<VcSlot> vc_slots_;
  std::vector<std::int32_t> timeline_of_;
  std::vector<std::int32_t> position_;
  std::vector<std::string> timeline_names_;
  std::unordered_map<std::string, std::int32_t, graph::StringHash,
                     std::equal_to<>>
      timeline_ids_;
  std::vector<std::int32_t> timeline_sizes_;  ///< events assigned per timeline

  ClockMode mode_ = ClockMode::kFlat;
  std::int32_t keyframe_interval_ = kDefaultKeyframeInterval;
  std::vector<SparseLane> lanes_;  ///< kSparse: one lane per timeline
  /// Repaired records that outgrew their lane window (kOverflowFlag set on
  /// the position): full replacement entry lists, keyed by
  /// (timeline << 32 | position).
  std::unordered_map<std::uint64_t, SparseRecord> overflow_;

  static constexpr std::uint64_t overflow_key(std::int32_t t,
                                              std::int32_t pos) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(t)) << 32) |
           static_cast<std::uint32_t>(pos);
  }
};

class LogicalClockAssigner {
 public:
  struct Options {
    /// Also write `lamportLogicalTime` into the graph store (feeding its
    /// ordered index). Disable only for throughput experiments that measure
    /// the traversal alone.
    bool write_lamport_property = true;
    /// VC storage backend (see ClockMode). Both modes produce identical
    /// clocks — the `clocks` differential suite holds them row-for-row
    /// equal — they differ in bytes/event and lookup cost only.
    ClockMode mode = ClockMode::kFlat;
    /// Sparse mode: full keyframe every this many positions per timeline
    /// (bounds the reconstruction walk). Ignored in flat mode.
    std::int32_t keyframe_interval = ClockTable::kDefaultKeyframeInterval;
  };

  explicit LogicalClockAssigner(ExecutionGraph& graph)
      : LogicalClockAssigner(graph, Options{}) {}
  LogicalClockAssigner(ExecutionGraph& graph, Options options);

  /// Assigns clocks to every node added since the previous call (or to all
  /// nodes on the first call). Returns the number of newly assigned nodes.
  ///
  /// Throws std::logic_error if the unassigned region contains a cycle
  /// (which would mean the encoders produced a non-DAG).
  std::size_t assign();

  /// Drops all state and recomputes every clock from scratch (keeping the
  /// configured storage mode).
  std::size_t reassign_all();

  /// Targeted heal for edges that landed after both endpoints were assigned
  /// (`dirty_roots` = the heads of the violated edges, as found by the clock
  /// daemon's audit). Recomputes Lamport and vector clocks for the forward
  /// causal closure of the roots only — new constraints can only *raise*
  /// clocks, and only downstream of the late edge, so every node outside the
  /// closure keeps its canonical value. Timelines and positions never change
  /// (they derive from per-timeline log order, which edges cannot alter).
  /// Returns the number of nodes recomputed.
  ///
  /// The closure walks out-edges of already-assigned nodes, which in a
  /// segmented store are the recently sealed / active segments — unlike
  /// reassign_all() it does not fault evicted segments back in.
  std::size_t repair(std::span<const graph::NodeId> dirty_roots);

  /// Replaces all assigner state with a table previously produced by
  /// ClockTable::save()/load(). The table's own storage mode wins (a
  /// checkpoint written in sparse mode restores sparse regardless of this
  /// assigner's configured default). The pool-id cache is invalidated (the
  /// restored table's timeline ids need not match the current store's
  /// interning order); the next assign() resumes incrementally from the
  /// restored frontier.
  void restore(ClockTable table);

  [[nodiscard]] const ClockTable& clocks() const noexcept { return table_; }

 private:
  /// Table timeline id for a store-interned timeline pool id (interning the
  /// name on first sight). Pool ids are append-only, so the cache is stable.
  std::int32_t timeline_for_pool(std::uint32_t pool_id);

  /// Component-wise max of VC(pred) into the dense accumulator (resizing as
  /// needed) — the storage-mode-aware half of the Kahn recurrence.
  void merge_pred_vc(graph::NodeId pred, std::vector<std::int32_t>& acc) const;

  /// Stores the freshly computed clock of v (assign path: always a new
  /// record/slot).
  void store_new_vc(graph::NodeId v, std::int32_t t, std::int32_t pos,
                    const std::vector<std::int32_t>& vc,
                    std::vector<std::int32_t>& tp_scratch);

  ExecutionGraph& graph_;
  Options options_;
  ClockTable table_;
  std::vector<std::int32_t> timeline_of_pool_;  ///< pool id -> table id cache
};

}  // namespace horus
