#include "core/clock_daemon.h"

#include <chrono>

#include "obs/metrics.h"

namespace horus {

ClockDaemon::ClockDaemon(ExecutionGraph& graph, Options options)
    : graph_(graph), options_(options), assigner_(graph) {}

ClockDaemon::~ClockDaemon() {
  if (running_.load()) stop();
}

void ClockDaemon::start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false);
  worker_ = ThreadPool::shared().spawn_service([this] {
    while (!stop_requested_.load(std::memory_order_acquire)) {
      tick();
      std::unique_lock lock(wake_mutex_);
      wake_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                     [this] {
                       return stop_requested_.load(std::memory_order_acquire);
                     });
    }
  });
}

void ClockDaemon::stop() {
  if (!running_.load()) return;
  stop_requested_.store(true, std::memory_order_release);
  wake_.notify_all();
  worker_.join();
  running_.store(false);
  tick();  // pick up anything that landed after the last periodic pass
}

bool ClockDaemon::audit_locked() const {
  const graph::GraphStore& store = graph_.store();
  const auto& clocks = assigner_.clocks();
  const auto n = static_cast<graph::NodeId>(store.node_count());
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!clocks.assigned(v)) continue;
    const auto lv = clocks.lamport(v);
    for (const graph::Edge& e : store.out_edges_snapshot(v)) {
      if (!clocks.assigned(e.to)) continue;
      // Both the Lamport and the full vector-clock invariant must hold on
      // every edge; a pred assigned without one of its in-edges fails the
      // VC check even when the Lamport values happen to line up.
      if (lv >= clocks.lamport(e.to) || !clocks.vc_less(v, e.to)) {
        return true;
      }
    }
  }
  return false;
}

std::size_t ClockDaemon::tick() {
  // Function-local statics: resolved once, shared by every daemon in the
  // process (there is normally one; a second would aggregate into the same
  // series, which is the semantics we want for process totals).
  static obs::Histogram& tick_seconds = obs::Registry::global().histogram(
      "horus_clock_tick_seconds",
      "Logical-clock assignment pass latency (audit + assign/heal)");
  static obs::Counter& ticks_total = obs::Registry::global().counter(
      "horus_clock_ticks_total", "Assignment passes run");
  static obs::Counter& heals_total = obs::Registry::global().counter(
      "horus_clock_heals_total",
      "Passes that found a violated edge invariant and reassigned all");
  static obs::Gauge& assigned_nodes = obs::Registry::global().gauge(
      "horus_clock_assigned_nodes", "Nodes with logical clocks assigned");
  static obs::Gauge& arena_bytes = obs::Registry::global().gauge(
      "horus_clock_vc_arena_bytes", "Resident size of the flat VC arena");

  const obs::Timer timer(tick_seconds);
  const std::unique_lock lock(mutex_);
  ticks_.fetch_add(1, std::memory_order_relaxed);
  ticks_total.inc();
  std::size_t assigned = 0;
  if (audit_locked()) {
    // A causal pair landed after its endpoints were assigned: heal by
    // recomputing from scratch.
    heals_.fetch_add(1, std::memory_order_relaxed);
    heals_total.inc();
    assigned = assigner_.reassign_all();
    assigned_ = assigned;
  } else {
    assigned = assigner_.assign();
    assigned_ += assigned;
    // The audit above ran before these assignments, so it could not see
    // edges from a just-assigned node into an earlier-assigned one (a
    // replayed upstream event, say): the downstream clocks are stale but
    // nothing would flag them until the next tick — which a final
    // drain-then-tick caller never issues. Re-audit and heal now.
    if (assigned > 0 && audit_locked()) {
      heals_.fetch_add(1, std::memory_order_relaxed);
      heals_total.inc();
      assigned_ = assigner_.reassign_all();
    }
  }
  assigned_nodes.set(static_cast<std::int64_t>(assigned_));
  arena_bytes.set(static_cast<std::int64_t>(
      assigner_.clocks().vc_arena_size() * sizeof(std::int32_t)));
  return assigned;
}

bool ClockDaemon::happens_before(graph::NodeId a, graph::NodeId b) const {
  const std::shared_lock lock(mutex_);
  return assigner_.clocks().happens_before(a, b);
}

CausalGraphResult ClockDaemon::get_causal_graph(graph::NodeId a,
                                                graph::NodeId b,
                                                bool only_logs) const {
  const std::shared_lock lock(mutex_);
  const CausalQueryEngine engine(graph_, assigner_.clocks());
  return engine.get_causal_graph(a, b, only_logs);
}

CausalGraphResult ClockDaemon::get_causal_graph(graph::NodeId a,
                                                graph::NodeId b,
                                                const QueryOptions& options,
                                                bool only_logs) const {
  const std::shared_lock lock(mutex_);
  const CausalQueryEngine engine(graph_, assigner_.clocks(), options);
  return engine.get_causal_graph(a, b, only_logs);
}

void ClockDaemon::restore_clocks(ClockTable table) {
  const std::unique_lock lock(mutex_);
  std::size_t assigned = 0;
  const auto n = static_cast<graph::NodeId>(graph_.store().node_count());
  for (graph::NodeId v = 0; v < n; ++v) {
    if (table.assigned(v)) ++assigned;
  }
  assigner_.restore(std::move(table));
  assigned_ = assigned;
}

std::size_t ClockDaemon::assigned_nodes() const {
  const std::shared_lock lock(mutex_);
  return assigned_;
}

}  // namespace horus
