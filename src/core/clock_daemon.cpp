#include "core/clock_daemon.h"

#include <chrono>
#include <utility>
#include <vector>

#include "core/segment_clocks.h"
#include "obs/metrics.h"

namespace horus {

ClockDaemon::ClockDaemon(ExecutionGraph& graph, Options options)
    : graph_(graph),
      options_(options),
      assigner_(graph,
                LogicalClockAssigner::Options{
                    .write_lamport_property = true,
                    .mode = options.mode,
                    .keyframe_interval = options.keyframe_interval}) {}

ClockDaemon::~ClockDaemon() {
  if (running_.load()) stop();
}

void ClockDaemon::start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false);
  worker_ = ThreadPool::shared().spawn_service([this] {
    while (!stop_requested_.load(std::memory_order_acquire)) {
      tick();
      std::unique_lock lock(wake_mutex_);
      wake_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                     [this] {
                       return stop_requested_.load(std::memory_order_acquire);
                     });
    }
  });
}

void ClockDaemon::stop() {
  if (!running_.load()) return;
  stop_requested_.store(true, std::memory_order_release);
  wake_.notify_all();
  worker_.join();
  running_.store(false);
  tick();  // pick up anything that landed after the last periodic pass
}

std::vector<graph::NodeId> ClockDaemon::audit_locked() const {
  const graph::GraphStore& store = graph_.store();
  const auto& clocks = assigner_.clocks();
  const auto n = static_cast<graph::NodeId>(store.node_count());
  std::vector<graph::NodeId> stale_heads;
  // Skip nodes in evicted segments: their adjacency is immutable since the
  // spill was written (any edge write faults the segment back in first and
  // dirties the spill), those edges passed this audit while resident, and
  // assigning a downstream node reads predecessor clocks from the table —
  // never the evicted payload. Without this, the periodic audit's
  // out_edges_snapshot() walk reloads every spilled segment each tick and
  // the resident budget can never hold. Heals still reassign_all(), which
  // walks everything.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> evicted;  // [first,end)
  if (const graph::SegmentManager* segments = store.segments()) {
    for (const graph::SegmentInfo& info : segments->list()) {
      if (!info.resident) {
        evicted.emplace_back(info.first, info.first + info.count);
      }
    }
  }
  auto gap = evicted.cbegin();  // ranges are contiguous and ascending
  for (graph::NodeId v = 0; v < n; ++v) {
    while (gap != evicted.cend() && v >= gap->second) ++gap;
    if (gap != evicted.cend() && v >= gap->first) {
      v = gap->second - 1;  // resume after the evicted range
      continue;
    }
    if (!clocks.assigned(v)) continue;
    const auto lv = clocks.lamport(v);
    for (const graph::Edge& e : store.out_edges_snapshot(v)) {
      if (!clocks.assigned(e.to)) continue;
      // Both the Lamport and the full vector-clock invariant must hold on
      // every edge; a pred assigned without one of its in-edges fails the
      // VC check even when the Lamport values happen to line up.
      if (lv >= clocks.lamport(e.to) || !clocks.vc_less(v, e.to)) {
        stale_heads.push_back(e.to);
      }
    }
  }
  return stale_heads;
}

std::size_t ClockDaemon::tick() {
  // Function-local statics: resolved once, shared by every daemon in the
  // process (there is normally one; a second would aggregate into the same
  // series, which is the semantics we want for process totals).
  static obs::Histogram& tick_seconds = obs::Registry::global().histogram(
      "horus_clock_tick_seconds",
      "Logical-clock assignment pass latency (audit + assign/heal)");
  static obs::Counter& ticks_total = obs::Registry::global().counter(
      "horus_clock_ticks_total", "Assignment passes run");
  static obs::Counter& heals_total = obs::Registry::global().counter(
      "horus_clock_heals_total",
      "Passes that found a violated edge invariant and reassigned all");
  static obs::Gauge& assigned_nodes = obs::Registry::global().gauge(
      "horus_clock_assigned_nodes", "Nodes with logical clocks assigned");
  static obs::Gauge& arena_bytes = obs::Registry::global().gauge(
      "horus_clock_vc_arena_bytes",
      "Resident bytes of the VC store (flat arena+slots, or sparse lanes)");

  const obs::Timer timer(tick_seconds);
  const std::unique_lock lock(mutex_);
  ticks_.fetch_add(1, std::memory_order_relaxed);
  ticks_total.inc();
  // Assign first, audit after: the post-assign audit sees both kinds of
  // staleness in one pass — causal pairs that landed after their endpoints
  // were assigned, and edges from a just-assigned node into an
  // earlier-assigned one (a replayed upstream event, say).
  std::size_t assigned = assigner_.assign();
  assigned_ += assigned;
  bool healed = false;
  // Heal the forward closure of violated edges only: a late edge can only
  // raise clocks downstream of its head, and the targeted repair — unlike
  // reassign_all() — does not fault evicted segments back in. Under live
  // ingest new pairs keep racing in between audit and repair, so retry the
  // cheap pass a few times; only a persistently failing audit falls back to
  // recomputing everything from scratch.
  std::vector<graph::NodeId> stale = audit_locked();
  for (int attempt = 0; !stale.empty() && attempt < 3; ++attempt) {
    heals_.fetch_add(1, std::memory_order_relaxed);
    heals_total.inc();
    healed = true;
    assigner_.repair(stale);
    stale = audit_locked();
  }
  if (!stale.empty()) {
    heals_.fetch_add(1, std::memory_order_relaxed);
    heals_total.inc();
    healed = true;
    assigned_ = assigner_.reassign_all();
  }
  // Segmented store: refresh stale VC summaries from the new clocks. A heal
  // can change VC components of nodes whose own properties never moved (the
  // staleness hook only sees store writes), so it forces a full rebuild.
  if (healed || assigned > 0) {
    update_segment_summaries(graph_.store(), assigner_.clocks(), healed);
  }
  assigned_nodes.set(static_cast<std::int64_t>(assigned_));
  arena_bytes.set(static_cast<std::int64_t>(assigner_.clocks().clock_bytes()));
  return assigned;
}

bool ClockDaemon::happens_before(graph::NodeId a, graph::NodeId b) const {
  const std::shared_lock lock(mutex_);
  return assigner_.clocks().happens_before(a, b);
}

CausalGraphResult ClockDaemon::get_causal_graph(graph::NodeId a,
                                                graph::NodeId b,
                                                bool only_logs) const {
  const std::shared_lock lock(mutex_);
  const CausalQueryEngine engine(graph_, assigner_.clocks());
  return engine.get_causal_graph(a, b, only_logs);
}

CausalGraphResult ClockDaemon::get_causal_graph(graph::NodeId a,
                                                graph::NodeId b,
                                                const QueryOptions& options,
                                                bool only_logs) const {
  const std::shared_lock lock(mutex_);
  const CausalQueryEngine engine(graph_, assigner_.clocks(), options);
  return engine.get_causal_graph(a, b, only_logs);
}

void ClockDaemon::restore_clocks(ClockTable table) {
  const std::unique_lock lock(mutex_);
  std::size_t assigned = 0;
  const auto n = static_cast<graph::NodeId>(graph_.store().node_count());
  for (graph::NodeId v = 0; v < n; ++v) {
    if (table.assigned(v)) ++assigned;
  }
  assigner_.restore(std::move(table));
  assigned_ = assigned;
}

std::size_t ClockDaemon::assigned_nodes() const {
  const std::shared_lock lock(mutex_);
  return assigned_;
}

}  // namespace horus
