#include "core/horus.h"

#include "core/segment_clocks.h"

namespace horus {

Horus::Horus(Options options)
    : inter_(graph_),
      intra_(
          graph_, [this](Event event) { inter_.on_event(event); },
          IntraProcessEncoder::Options{options.granularity}),
      assigner_(graph_,
                LogicalClockAssigner::Options{
                    .write_lamport_property = true,
                    .mode = options.clock_mode,
                    .keyframe_interval = options.keyframe_interval}) {}

void Horus::ingest(Event event) { intra_.on_event(std::move(event)); }

EventSinkFn Horus::sink() {
  return [this](Event event) { ingest(std::move(event)); };
}

void Horus::seal() {
  intra_.flush();
  inter_.flush();
  assigner_.assign();
  // Segmented store: sealed segments whose contents changed since the last
  // seal get their VC summaries rebuilt from the fresh clocks.
  update_segment_summaries(graph_.store(), assigner_.clocks());
}

}  // namespace horus
