// The distributed deployment of the Horus event-processing pipeline
// (Figure 2 of the paper): adapters publish normalized events into a
// partitioned *sources* topic; intra-process encoder workers consume it,
// persist timelines and forward into a *timeline* topic; inter-process
// encoder workers consume that and persist the HB edges.
//
// Scale-out correctness (Section VII-A) is enforced by partition routing:
//   (i)   all events of one process hash (by thread key) onto one sources
//         partition, so exactly one intra worker sees them, in order;
//   (ii)  both halves of every causal pair hash (by the pair's rule key:
//         channel for SND/RCV/CONNECT/ACCEPT, child thread for lifecycle
//         events) onto one timeline partition, so exactly one inter worker
//         matches them;
//   (iii) each intra worker preserves per-timeline order when producing
//         into the timeline topic (single-threaded stage, FIFO partitions).
//
// Encoders therefore need no cross-worker synchronization.
//
// Crash recovery: consumers resume from committed offsets (at-least-once;
// the intra stage suppresses replayed duplicates) and a restarted intra
// worker recovers each timeline's chain tail from the store, so program
// order survives restarts. One caveat matches the paper's design: the
// inter-process encoder's *pending* pairs are in-memory — a half of a
// causal pair consumed and committed before a crash, whose counterpart
// arrives only after the restart, will not be paired. Keeping the
// relationship flush interval at or below the commit cadence bounds that
// window.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/execution_graph.h"
#include "core/inter_encoder.h"
#include "core/intra_encoder.h"
#include "event/event.h"
#include "queue/broker.h"
#include "queue/consumer.h"

namespace horus {

struct PipelineOptions {
  /// Timeline granularity handed to the intra-process encoders; also
  /// controls the sources-topic routing key (point i above).
  TimelineGranularity granularity = TimelineGranularity::kProcess;
  int partitions = 4;         ///< partitions per topic
  int intra_workers = 1;
  int inter_workers = 1;
  /// Flush cadence of the intra stage (events), per the paper's tunable.
  int event_flush_interval_ms = 100;
  /// Flush cadence of the inter stage (causal relationships).
  int relationship_flush_interval_ms = 200;
  std::size_t poll_batch = 512;
  std::string sources_topic = "horus.events";
  std::string timeline_topic = "horus.timeline";
};

/// Routing key under rule-based pair affinity (see file comment, point ii).
[[nodiscard]] std::string inter_routing_key(const Event& event);

class Pipeline {
 public:
  Pipeline(queue::Broker& broker, ExecutionGraph& graph,
           PipelineOptions options = {});
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Starts the worker threads.
  void start();

  /// Publishes one event into the sources topic (thread-safe; this is the
  /// producer API adapters use).
  void publish(const Event& event);

  /// Sink adapter for EventSinkFn-based producers.
  [[nodiscard]] EventSinkFn sink();

  /// Blocks until every published event has fully exited the pipeline
  /// (both stages drained and flushed).
  void drain();

  /// Stops all workers (drains first).
  void stop();

  // -- statistics ------------------------------------------------------------
  [[nodiscard]] std::uint64_t events_published() const noexcept {
    return published_.load();
  }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return inter_processed_.load();
  }
  [[nodiscard]] std::uint64_t intra_processed() const noexcept {
    return intra_processed_.load();
  }

 private:
  void intra_worker(int index, std::vector<int> partitions);
  void inter_worker(int index, std::vector<int> partitions);

  queue::Broker& broker_;
  ExecutionGraph& graph_;
  PipelineOptions options_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> intra_processed_{0};
  std::atomic<std::uint64_t> intra_forwarded_{0};
  std::atomic<std::uint64_t> inter_processed_{0};

  std::vector<std::thread> workers_;
};

}  // namespace horus
