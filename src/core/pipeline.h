// The distributed deployment of the Horus event-processing pipeline
// (Figure 2 of the paper): adapters publish normalized events into a
// partitioned *sources* topic; intra-process encoder workers consume it,
// persist timelines and forward into a *timeline* topic; inter-process
// encoder workers consume that and persist the HB edges.
//
// Scale-out correctness (Section VII-A) is enforced by partition routing:
//   (i)   all events of one process hash (by thread key) onto one sources
//         partition, so exactly one intra worker sees them, in order;
//   (ii)  both halves of every causal pair hash (by the pair's rule key:
//         channel for SND/RCV/CONNECT/ACCEPT, child thread for lifecycle
//         events) onto one timeline partition, so exactly one inter worker
//         matches them;
//   (iii) each intra worker preserves per-timeline order when producing
//         into the timeline topic (single-threaded stage, FIFO partitions).
//
// Encoders therefore need no cross-worker synchronization.
//
// Crash recovery: consumers resume from committed offsets (at-least-once;
// the intra stage suppresses replayed duplicates and the graph stores edges
// idempotently) and a restarted intra worker recovers each timeline's chain
// tail from the store, so program order survives restarts. The
// inter-process encoder's *pending* pairs are durable through a write-ahead
// spill: with PipelineOptions::wal_dir set, each inter worker rewrites
// <wal_dir>/inter-<index>.wal with the events backing its unmatched pending
// state immediately before every offset commit, and a restarted worker
// re-feeds that file before consuming. A half of a causal pair consumed and
// committed before a crash therefore still pairs with a counterpart that
// arrives only after the restart — the lost-edge window a purely in-memory
// inter stage would have is closed. Without wal_dir the old in-memory
// behaviour (and its window) remains.
//
// Fault model (see queue/fault.h for the injectable faults): the pipeline
// tolerates transient produce/poll failures (retried with capped
// exponential backoff), duplicated and redelivered messages (id-based dedup
// plus idempotent edges), bounded partition stalls (drain() tracks broker
// offsets, not wall clock), and scheduled consumer-worker crashes — the
// worker thread counts a recovery, rebuilds its consumer and encoder, and
// resumes from the committed offsets / the WAL. Messages that fail JSON
// decoding, and events rejected by the ingress validator, are diverted to
// the dead-letter topic (PipelineOptions::dlq_topic) instead of poisoning
// the graph; drain() does not wait for them.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "core/execution_graph.h"
#include "core/inter_encoder.h"
#include "core/intra_encoder.h"
#include "event/event.h"
#include "queue/broker.h"
#include "queue/consumer.h"

namespace horus {

struct PipelineOptions {
  /// Timeline granularity handed to the intra-process encoders; also
  /// controls the sources-topic routing key (point i above).
  TimelineGranularity granularity = TimelineGranularity::kProcess;
  int partitions = 4;         ///< partitions per topic
  int intra_workers = 1;
  int inter_workers = 1;
  /// Flush cadence of the intra stage (events), per the paper's tunable.
  int event_flush_interval_ms = 100;
  /// Flush cadence of the inter stage (causal relationships).
  int relationship_flush_interval_ms = 200;
  std::size_t poll_batch = 512;
  std::string sources_topic = "horus.events";
  std::string timeline_topic = "horus.timeline";
  /// Dead-letter topic for undecodable or invalid events (one partition).
  std::string dlq_topic = "horus.dlq";
  /// Directory for the inter stage's pending-pair write-ahead spill.
  /// Empty disables the spill (pending pairs die with a crashed worker).
  std::string wal_dir;
  /// Upper bound on drain(); expired drains report stuck-stage counters
  /// via diag(kError) and return false.
  int drain_timeout_ms = 30'000;
  /// Backoff for transient broker faults: base doubles per attempt up to
  /// the cap.
  int retry_backoff_base_ms = 1;
  int retry_backoff_cap_ms = 16;
};

/// Routing key under rule-based pair affinity (see file comment, point ii).
[[nodiscard]] std::string inter_routing_key(const Event& event);

class Pipeline {
 public:
  Pipeline(queue::Broker& broker, ExecutionGraph& graph,
           PipelineOptions options = {});
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Starts the worker threads.
  void start();

  /// Publishes one event into the sources topic (thread-safe; this is the
  /// producer API adapters use). Transient produce faults are retried with
  /// backoff — by the time this returns the event is in the queue.
  void publish(const Event& event);

  /// Sink adapter for EventSinkFn-based producers.
  [[nodiscard]] EventSinkFn sink();

  /// Sink for raw inputs an adapter could not decode: the payload goes to
  /// the dead-letter topic, tagged with the given error. Wire this into
  /// e.g. adapters::FileTailSource::set_dead_letter.
  [[nodiscard]] std::function<void(const std::string& raw,
                                   const std::string& error)>
  dead_letter_sink();

  /// Blocks until every published event has fully exited the pipeline
  /// (both stages consumed *and committed* everything the broker holds —
  /// robust against injected duplicates and crash replays) or the drain
  /// timeout expires. Sleeps on a condition variable the workers signal
  /// after every offset commit (no busy-polling). Returns false on timeout,
  /// after reporting the stage counters AND the committed-vs-end offsets of
  /// every stuck partition via diag(kError).
  bool drain();

  /// Stops all workers (flushing and committing what they consumed).
  /// Safe against concurrent stop() calls and the destructor: exactly one
  /// caller joins the workers; the others wait for it to finish.
  void stop();

  /// Hard-drops all workers WITHOUT a final flush or offset commit — the
  /// in-process equivalent of SIGKILL. Anything consumed since the last
  /// commit is lost from memory but not from the broker (offsets were never
  /// advanced), so a restarted pipeline replays it. The service recovery
  /// tests use this to crash the daemon at arbitrary points.
  void kill();

  /// Uncommitted broker backlog across both stages: sum over every
  /// (group, partition) of end-of-log minus committed offset. The service
  /// overload controller reads this as its ingest-pressure signal.
  [[nodiscard]] std::uint64_t backlog() const;

  /// Blocks every worker at its flush+commit boundary and returns the lock.
  /// While held, the graph, the inter-stage WAL files, and the committed
  /// broker offsets are mutually consistent (workers only mutate all three
  /// inside the gated section) — the window in which the service checkpoint
  /// serializes its bundle. Workers keep polling/buffering; they just
  /// cannot flush or commit until the lock is released.
  [[nodiscard]] std::unique_lock<std::shared_mutex> quiesce_commits() {
    return std::unique_lock(flush_gate_);
  }

  // -- statistics ------------------------------------------------------------
  // Counters live in the process-wide obs::Registry, labeled with this
  // instance's id (pipeline="<n>"), so per-instance accessors and the
  // registry exposition read the same memory.
  [[nodiscard]] std::uint64_t events_published() const noexcept {
    return published_->value();
  }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return inter_processed_->value();
  }
  [[nodiscard]] std::uint64_t intra_processed() const noexcept {
    return intra_processed_->value();
  }
  /// Retry attempts against transient broker faults (produce and poll).
  [[nodiscard]] std::uint64_t events_retried() const noexcept {
    return retried_->value();
  }
  /// Messages diverted to the dead-letter topic.
  [[nodiscard]] std::uint64_t events_dead_lettered() const noexcept {
    return dead_lettered_->value();
  }
  /// Worker crash-recovery cycles (injected crashes survived).
  [[nodiscard]] std::uint64_t recoveries() const noexcept {
    return recoveries_->value();
  }
  /// Replayed/duplicated deliveries dropped by the intra stage.
  [[nodiscard]] std::uint64_t events_deduplicated() const noexcept {
    return intra_duplicates_->value();
  }

 private:
  void intra_worker(int index, std::vector<int> partitions);
  void inter_worker(int index, std::vector<int> partitions);
  void run_intra(int index, const std::vector<int>& partitions);
  void run_inter(int index, const std::vector<int>& partitions);
  void dead_letter(const std::string& stage, const std::string& payload,
                   const std::string& error);
  [[nodiscard]] bool committed_through(const std::string& topic,
                                       const std::string& group_prefix,
                                       int workers) const;
  [[nodiscard]] bool all_committed() const;
  /// "topic[p] group=g committed=x end=y" for every partition whose group
  /// offset trails the log end (the drain-timeout diagnostic).
  [[nodiscard]] std::string stuck_partition_report() const;
  /// Per-shard segment rollup for the same diagnostic; empty when the
  /// store is monolithic.
  [[nodiscard]] std::string segment_report() const;
  /// Wakes drain() after a worker commits offsets.
  void notify_commit_progress();
  [[nodiscard]] std::string wal_path(int index) const;

  queue::Broker& broker_;
  ExecutionGraph& graph_;
  PipelineOptions options_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> kill_requested_{false};

  /// Checkpoint gate: workers hold it shared across each flush+commit
  /// section; quiesce_commits() holds it unique (see its comment).
  std::shared_mutex flush_gate_;

  /// Serializes start()/stop()/destructor so only one caller ever joins and
  /// clears workers_ (a second concurrent stop() waits, then no-ops).
  std::mutex lifecycle_mutex_;
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  std::string instance_;  ///< process-unique id, the `pipeline` label value
  obs::Counter* published_;
  obs::Counter* intra_processed_;
  obs::Counter* intra_forwarded_;
  obs::Counter* inter_processed_;
  obs::Counter* inter_edges_;
  obs::Counter* retried_;
  obs::Counter* dead_lettered_;
  obs::Counter* recoveries_;
  obs::Counter* intra_duplicates_;
  obs::Counter* wal_spills_;
  obs::Counter* wal_recovered_;
  obs::Gauge* intra_pending_;
  obs::Gauge* inter_pending_;
  /// Matched pairs the inter stage could not flush yet because their nodes
  /// are still being replayed (post-restore only); drain() waits on zero.
  obs::Gauge* inter_deferred_;
  obs::Histogram* intra_flush_seconds_;
  obs::Histogram* inter_flush_seconds_;

  /// Long-running stage workers, spawned through the shared ThreadPool's
  /// service facility (dedicated threads; centralized join/lifecycle).
  std::vector<ThreadPool::ServiceThread> workers_;

  template <typename Fn>
  auto backoff_retry(const char* what, Fn&& op) -> decltype(op());
};

}  // namespace horus
