#include "core/logical_clocks.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "common/crc32.h"
#include "common/error.h"

namespace horus {

namespace {

// Little-endian scalar framing for the clock-table record. Everything is
// serialized into one payload string first so the CRC and the length prefix
// cover the exact bytes on the wire.
void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_i32(std::string& buf, std::int32_t v) {
  put_u32(buf, static_cast<std::uint32_t>(v));
}

void put_i64(std::string& buf, std::int64_t v) {
  put_u64(buf, static_cast<std::uint64_t>(v));
}

/// Bounds-checked cursor over the loaded payload; short reads surface as
/// HorusError instead of UB.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    return static_cast<std::uint8_t>(*bytes(1));
  }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    const auto* p = bytes(4);
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    }
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    const auto* p = bytes(8);
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    }
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::string str(std::size_t len) {
    const char* p = bytes(len);
    return std::string(p, len);
  }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  const char* bytes(std::size_t n) {
    if (data_.size() - pos_ < n) {
      throw HorusError("clock table: truncated record (payload short read)");
    }
    const char* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

// Record magics: "HORUSVC" + a version digit. V1 is the original flat-arena
// format (still written by flat tables and still loadable forever); V2 adds
// a storage-mode byte and the sparse lane payload.
constexpr char kClockMagicV1[8] = {'H', 'O', 'R', 'U', 'S', 'V', 'C', '1'};
constexpr char kClockMagicV2[8] = {'H', 'O', 'R', 'U', 'S', 'V', 'C', '2'};

}  // namespace

std::optional<ClockMode> parse_clock_mode(std::string_view text) {
  if (text == "flat") return ClockMode::kFlat;
  if (text == "sparse") return ClockMode::kSparse;
  return std::nullopt;
}

// ---- sparse storage primitives ---------------------------------------------

template <typename Fn>
void ClockTable::walk_sparse(std::int32_t t, std::int32_t pos, Fn&& fn) const {
  const SparseLane& lane = lanes_[static_cast<std::size_t>(t)];
  for (std::int32_t p = pos; p >= 1; --p) {
    const auto idx = static_cast<std::size_t>(p - 1);
    const std::uint8_t f = lane.flags[idx];
    if ((f & kOverflowFlag) != 0) {
      const auto it = overflow_.find(overflow_key(t, p));
      if (it != overflow_.end()) {
        for (const auto& [tl, val] : it->second) fn(tl, val);
      }
    } else {
      const std::uint32_t end = lane.rec_end[idx];
      const std::uint32_t begin = p > 1 ? lane.rec_end[idx - 1] : 0;
      for (std::uint32_t i = begin; i < end; ++i) {
        // Pad entries (repair shrank the record in place) sort after every
        // real timeline id, so the first one terminates the record.
        if (lane.entry_tl[i] == kPadTimeline) break;
        fn(lane.entry_tl[i], lane.entry_val[i]);
      }
    }
    if ((f & kKeyframeFlag) != 0) break;
  }
}

std::size_t ClockTable::reconstruct_dense(
    std::int32_t t, std::int32_t pos, std::vector<std::int32_t>& dense) const {
  dense.assign(timeline_names_.size(), 0);
  std::size_t len = 0;
  walk_sparse(t, pos, [&](std::int32_t tl, std::int32_t val) {
    const auto i = static_cast<std::size_t>(tl);
    if (i >= dense.size()) dense.resize(i + 1, 0);
    // Latest record first + components only grow along a chain: max over
    // every occurrence equals the current value (no first-found bookkeeping
    // needed).
    if (val > dense[i]) dense[i] = val;
    if (i + 1 > len) len = i + 1;
  });
  return len;
}

bool ClockTable::build_sparse_record(std::span<const std::int32_t> vc,
                                     bool keyframe,
                                     const std::vector<std::int32_t>& tp,
                                     std::size_t tp_len,
                                     SparseRecord& record) const {
  record.clear();
  std::size_t nonzero = 0;
  if (!keyframe) {
    for (std::size_t c = 0; c < vc.size(); ++c) {
      if (vc[c] == 0) continue;
      ++nonzero;
      const std::int32_t base = c < tp_len ? tp[c] : 0;
      if (vc[c] != base) {
        record.emplace_back(static_cast<std::int32_t>(c), vc[c]);
      }
    }
    // A delta no smaller than the full sparse form buys nothing and
    // lengthens walks — promote to a keyframe.
    if (record.size() >= nonzero) keyframe = true;
  }
  if (keyframe) {
    record.clear();
    for (std::size_t c = 0; c < vc.size(); ++c) {
      if (vc[c] != 0) record.emplace_back(static_cast<std::int32_t>(c), vc[c]);
    }
  }
  return keyframe;
}

void ClockTable::append_sparse(graph::NodeId v, std::int32_t t,
                               std::int32_t pos,
                               std::span<const std::int32_t> vc,
                               std::vector<std::int32_t>& tp_scratch) {
  (void)v;
  if (lanes_.size() <= static_cast<std::size_t>(t)) {
    lanes_.resize(static_cast<std::size_t>(t) + 1);
  }
  SparseLane& lane = lanes_[static_cast<std::size_t>(t)];
  // Kahn order respects the intra chain, so positions of one timeline are
  // always appended consecutively.
  if (static_cast<std::size_t>(pos) != lane.rec_end.size() + 1) {
    throw std::logic_error("clock table: out-of-order sparse lane append");
  }
  bool keyframe = pos == 1 || ((pos - 1) % keyframe_interval_) == 0;
  std::size_t tp_len = 0;
  if (!keyframe) tp_len = reconstruct_dense(t, pos - 1, tp_scratch);
  static thread_local SparseRecord record;
  keyframe = build_sparse_record(vc, keyframe, tp_scratch, tp_len, record);
  if (lane.entry_tl.size() + record.size() >
      std::numeric_limits<std::uint32_t>::max()) {
    throw HorusError("clock table: sparse lane exceeds 32-bit addressing");
  }
  for (const auto& [tl, val] : record) {
    lane.entry_tl.push_back(tl);
    lane.entry_val.push_back(val);
  }
  lane.rec_end.push_back(static_cast<std::uint32_t>(lane.entry_tl.size()));
  lane.flags.push_back(keyframe ? kKeyframeFlag : std::uint8_t{0});
}

void ClockTable::rewrite_sparse(graph::NodeId v, std::int32_t t,
                                std::int32_t pos,
                                std::span<const std::int32_t> vc,
                                std::vector<std::int32_t>& tp_scratch) {
  (void)v;
  SparseLane& lane = lanes_[static_cast<std::size_t>(t)];
  const auto idx = static_cast<std::size_t>(pos - 1);
  std::uint8_t f = lane.flags[idx];
  // Keyframes stay keyframes: descendants' reconstruction walks terminate
  // here and must keep seeing the full vector. Deltas may be promoted when
  // the repair grew them past the full sparse form.
  bool keyframe = (f & kKeyframeFlag) != 0;
  std::size_t tp_len = 0;
  if (!keyframe && pos > 1) tp_len = reconstruct_dense(t, pos - 1, tp_scratch);
  static thread_local SparseRecord record;
  keyframe = build_sparse_record(vc, keyframe, tp_scratch, tp_len, record);
  if ((f & kOverflowFlag) != 0) {
    overflow_[overflow_key(t, pos)] = record;
  } else {
    const std::uint32_t end = lane.rec_end[idx];
    const std::uint32_t begin = idx > 0 ? lane.rec_end[idx - 1] : 0;
    if (record.size() <= static_cast<std::size_t>(end - begin)) {
      std::uint32_t i = begin;
      for (const auto& [tl, val] : record) {
        lane.entry_tl[i] = tl;
        lane.entry_val[i] = val;
        ++i;
      }
      for (; i < end; ++i) {
        lane.entry_tl[i] = kPadTimeline;
        lane.entry_val[i] = 0;
      }
    } else {
      // Outgrew the lane window: spill the record to the overflow table
      // (the window is dead from here on). Repairs are rare, so overflow
      // stays tiny; reassign_all() rebuilds packed lanes.
      f |= kOverflowFlag;
      overflow_[overflow_key(t, pos)] = record;
    }
  }
  if (keyframe) f |= kKeyframeFlag;
  lane.flags[idx] = f;
}

// ---- lookups ----------------------------------------------------------------

std::span<const std::int32_t> ClockTable::vc_span(
    graph::NodeId node, std::vector<std::int32_t>& scratch) const {
  if (!assigned(node)) return {};
  if (mode_ == ClockMode::kFlat) {
    if (node >= vc_slots_.size()) return {};
    const VcSlot s = vc_slots_[node];
    return {vc_arena_.data() + s.offset, s.len};
  }
  const std::size_t len =
      reconstruct_dense(timeline_of_[node], position_[node], scratch);
  return {scratch.data(), len};
}

std::int32_t ClockTable::vc_component(graph::NodeId node,
                                      std::int32_t timeline) const {
  if (!assigned(node) || timeline < 0) return 0;
  if (mode_ == ClockMode::kFlat) {
    if (node >= vc_slots_.size()) return 0;
    const VcSlot s = vc_slots_[node];
    return static_cast<std::uint32_t>(timeline) < s.len
               ? vc_arena_[s.offset + static_cast<std::uint32_t>(timeline)]
               : 0;
  }
  // Own-timeline component is the position by construction — answered
  // without touching the lanes (the common case in Q1's position test when
  // both events share a timeline).
  const std::int32_t t = timeline_of_[node];
  if (timeline == t) return position_[node];
  // Walk the delta chain latest record first: the nearest occurrence of the
  // component is its current value; a keyframe proves absence means zero.
  const SparseLane& lane = lanes_[static_cast<std::size_t>(t)];
  for (std::int32_t p = position_[node]; p >= 1; --p) {
    const auto idx = static_cast<std::size_t>(p - 1);
    const std::uint8_t f = lane.flags[idx];
    if ((f & kOverflowFlag) != 0) {
      const auto it = overflow_.find(overflow_key(t, p));
      if (it != overflow_.end()) {
        const auto& rec = it->second;
        const auto lo = std::lower_bound(
            rec.begin(), rec.end(), timeline,
            [](const auto& e, std::int32_t tl) { return e.first < tl; });
        if (lo != rec.end() && lo->first == timeline) return lo->second;
      }
    } else {
      const std::uint32_t end = lane.rec_end[idx];
      const std::uint32_t begin = p > 1 ? lane.rec_end[idx - 1] : 0;
      const std::int32_t* base = lane.entry_tl.data();
      const std::int32_t* lo =
          std::lower_bound(base + begin, base + end, timeline);
      if (lo != base + end && *lo == timeline) {
        return lane.entry_val[static_cast<std::size_t>(lo - base)];
      }
    }
    if ((f & kKeyframeFlag) != 0) break;
  }
  return 0;
}

std::size_t ClockTable::clock_bytes() const noexcept {
  if (mode_ == ClockMode::kFlat) {
    return vc_arena_.size() * sizeof(std::int32_t) +
           vc_slots_.size() * sizeof(VcSlot);
  }
  std::size_t bytes = 0;
  for (const SparseLane& lane : lanes_) {
    bytes += (lane.entry_tl.size() + lane.entry_val.size()) *
                 sizeof(std::int32_t) +
             lane.rec_end.size() * sizeof(std::uint32_t) +
             lane.flags.size() * sizeof(std::uint8_t);
  }
  for (const auto& [key, rec] : overflow_) {
    (void)key;
    bytes += sizeof(std::uint64_t) + rec.size() * 2 * sizeof(std::int32_t);
  }
  return bytes;
}

bool ClockTable::happens_before(graph::NodeId a, graph::NodeId b) const {
  if (a == b) return false;
  if (!assigned(a) || !assigned(b)) return false;
  return vc_component(b, timeline_of_[a]) >= position_[a];
}

bool ClockTable::vc_less(graph::NodeId a, graph::NodeId b) const {
  if (!assigned(a) || !assigned(b)) return false;
  // Flat spans view the arena; sparse spans reconstruct into the scratches.
  static thread_local std::vector<std::int32_t> scratch_a;
  static thread_local std::vector<std::int32_t> scratch_b;
  const auto va = vc_span(a, scratch_a);
  const auto vb = vc_span(b, scratch_b);
  const std::size_t n = std::max(va.size(), vb.size());
  bool strictly = false;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t x = i < va.size() ? va[i] : 0;
    const std::int32_t y = i < vb.size() ? vb[i] : 0;
    if (x > y) return false;
    if (x < y) strictly = true;
  }
  return strictly;
}

std::string ClockTable::vc_string(graph::NodeId node) const {
  std::string out = "[";
  std::vector<std::int32_t> scratch;
  const auto v = vc_span(node, scratch);
  for (std::size_t i = 0; i < timeline_names_.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(i < v.size() ? v[i] : 0);
  }
  out += ']';
  return out;
}

// ---- serialization ----------------------------------------------------------

void ClockTable::save(std::ostream& out) const {
  std::string payload;
  const std::uint64_t n = lamport_.size();
  if (mode_ == ClockMode::kFlat) {
    // Byte-identical to the original HORUSVC1 writer: flat checkpoints stay
    // readable by (and from) earlier builds.
    payload.reserve(64 + n * 24 + vc_arena_.size() * 4);
    put_u64(payload, n);
    for (const std::int64_t lc : lamport_) put_i64(payload, lc);
    put_u64(payload, vc_arena_.size());
    for (const std::int32_t c : vc_arena_) put_i32(payload, c);
    for (const VcSlot& s : vc_slots_) {
      put_u32(payload, s.offset);
      put_u32(payload, s.len);
    }
    for (const std::int32_t t : timeline_of_) put_i32(payload, t);
    for (const std::int32_t p : position_) put_i32(payload, p);
    put_u64(payload, timeline_names_.size());
    for (std::size_t i = 0; i < timeline_names_.size(); ++i) {
      put_u32(payload, static_cast<std::uint32_t>(timeline_names_[i].size()));
      payload += timeline_names_[i];
      put_i32(payload, timeline_sizes_[i]);
    }
  } else {
    payload.reserve(64 + n * 16);
    payload.push_back(static_cast<char>(ClockMode::kSparse));
    put_i32(payload, keyframe_interval_);
    put_u64(payload, n);
    for (const std::int64_t lc : lamport_) put_i64(payload, lc);
    for (const std::int32_t t : timeline_of_) put_i32(payload, t);
    for (const std::int32_t p : position_) put_i32(payload, p);
    put_u64(payload, timeline_names_.size());
    for (std::size_t i = 0; i < timeline_names_.size(); ++i) {
      put_u32(payload, static_cast<std::uint32_t>(timeline_names_[i].size()));
      payload += timeline_names_[i];
      put_i32(payload, timeline_sizes_[i]);
    }
    static const SparseLane kEmptyLane;
    for (std::size_t i = 0; i < timeline_names_.size(); ++i) {
      const SparseLane& lane = i < lanes_.size() ? lanes_[i] : kEmptyLane;
      put_u64(payload, lane.rec_end.size());
      for (const std::uint32_t e : lane.rec_end) put_u32(payload, e);
      for (const std::uint8_t f : lane.flags) {
        payload.push_back(static_cast<char>(f));
      }
      put_u64(payload, lane.entry_tl.size());
      for (const std::int32_t tl : lane.entry_tl) put_i32(payload, tl);
      for (const std::int32_t val : lane.entry_val) put_i32(payload, val);
    }
    put_u64(payload, overflow_.size());
    for (const auto& [key, rec] : overflow_) {
      put_u64(payload, key);
      put_u32(payload, static_cast<std::uint32_t>(rec.size()));
      for (const auto& [tl, val] : rec) {
        put_i32(payload, tl);
        put_i32(payload, val);
      }
    }
  }

  const std::uint32_t crc = crc32(payload);
  std::string frame;
  frame.reserve(sizeof(kClockMagicV1) + 8 + payload.size() + 4);
  if (mode_ == ClockMode::kFlat) {
    frame.append(kClockMagicV1, sizeof(kClockMagicV1));
  } else {
    frame.append(kClockMagicV2, sizeof(kClockMagicV2));
  }
  put_u64(frame, payload.size());
  frame += payload;
  put_u32(frame, crc);
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  if (!out) throw HorusError("clock table: write failed");
}

namespace {

/// Shared tail of both versions: length prefix, payload, CRC trailer,
/// single-record check.
std::string read_clock_payload(std::istream& in) {
  char len_bytes[8];
  if (!in.read(len_bytes, sizeof(len_bytes))) {
    throw HorusError("clock table: truncated record (missing length)");
  }
  std::uint64_t payload_len = 0;
  for (int i = 0; i < 8; ++i) {
    payload_len |=
        static_cast<std::uint64_t>(static_cast<unsigned char>(len_bytes[i]))
        << (8 * i);
  }
  // An absurd length means a corrupt length field; refuse before allocating.
  if (payload_len > (1ULL << 36)) {
    throw HorusError("clock table: implausible payload length (corrupt)");
  }
  std::string payload(payload_len, '\0');
  if (!in.read(payload.data(), static_cast<std::streamsize>(payload_len))) {
    throw HorusError("clock table: truncated record (payload short read)");
  }
  char crc_bytes[4];
  if (!in.read(crc_bytes, sizeof(crc_bytes))) {
    throw HorusError("clock table: truncated record (missing CRC trailer)");
  }
  std::uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |=
        static_cast<std::uint32_t>(static_cast<unsigned char>(crc_bytes[i]))
        << (8 * i);
  }
  if (crc32(payload) != stored_crc) {
    throw HorusError("clock table: CRC mismatch (corrupt record)");
  }
  // A clocks.bin holds exactly one record; bytes after the CRC trailer mean
  // the file was mangled (e.g. two writes interleaved), not a longer table.
  if (in.peek() != std::istream::traits_type::eof()) {
    throw HorusError("clock table: data after the CRC trailer (corrupt)");
  }
  return payload;
}

}  // namespace

ClockTable ClockTable::load(std::istream& in) {
  char magic[sizeof(kClockMagicV1)];
  if (!in.read(magic, sizeof(magic)) ||
      !std::equal(magic, magic + sizeof(magic) - 1, kClockMagicV1)) {
    throw HorusError("clock table: bad magic (not a clock-table record)");
  }
  const char version = magic[sizeof(magic) - 1];
  if (version != '1' && version != '2') {
    // Structurally a clock record, just from a newer (or corrupted-version)
    // format — the typed error lets restore paths say "upgrade the binary"
    // instead of "corrupt checkpoint".
    throw ClockFormatError(std::string("clock table: record version '") +
                           version + "' not supported by this binary");
  }
  const std::string payload = read_clock_payload(in);
  Cursor cur(payload);
  ClockTable table;

  if (version == '2') {
    const std::uint8_t mode = cur.u8();
    if (mode != static_cast<std::uint8_t>(ClockMode::kSparse)) {
      throw ClockFormatError(
          "clock table: storage mode " + std::to_string(int(mode)) +
          " not supported by this binary");
    }
    table.mode_ = ClockMode::kSparse;
    table.keyframe_interval_ = cur.i32();
    if (table.keyframe_interval_ < 1) {
      throw HorusError("clock table: invalid keyframe interval (corrupt)");
    }
  }

  const std::uint64_t n = cur.u64();
  table.lamport_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) table.lamport_.push_back(cur.i64());

  if (version == '1') {
    const std::uint64_t arena = cur.u64();
    table.vc_arena_.reserve(arena);
    for (std::uint64_t i = 0; i < arena; ++i) {
      table.vc_arena_.push_back(cur.i32());
    }
    table.vc_slots_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      VcSlot s;
      s.offset = cur.u32();
      s.len = cur.u32();
      if (static_cast<std::uint64_t>(s.offset) + s.len > arena) {
        throw HorusError("clock table: VC slot outside arena (corrupt record)");
      }
      table.vc_slots_.push_back(s);
    }
  }

  table.timeline_of_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) table.timeline_of_.push_back(cur.i32());
  table.position_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) table.position_.push_back(cur.i32());
  const std::uint64_t timelines = cur.u64();
  for (std::uint64_t i = 0; i < timelines; ++i) {
    const std::uint32_t name_len = cur.u32();
    std::string name = cur.str(name_len);
    table.timeline_ids_.try_emplace(name, static_cast<std::int32_t>(i));
    table.timeline_names_.push_back(std::move(name));
    table.timeline_sizes_.push_back(cur.i32());
  }

  if (version == '2') {
    table.lanes_.resize(timelines);
    for (std::uint64_t i = 0; i < timelines; ++i) {
      SparseLane& lane = table.lanes_[i];
      const std::uint64_t positions = cur.u64();
      if (positions !=
          static_cast<std::uint64_t>(std::max<std::int32_t>(
              0, table.timeline_sizes_[static_cast<std::size_t>(i)]))) {
        throw HorusError(
            "clock table: lane size disagrees with timeline size (corrupt)");
      }
      lane.rec_end.reserve(positions);
      std::uint32_t prev = 0;
      for (std::uint64_t p = 0; p < positions; ++p) {
        const std::uint32_t e = cur.u32();
        if (e < prev) {
          throw HorusError(
              "clock table: non-monotone lane record offsets (corrupt)");
        }
        prev = e;
        lane.rec_end.push_back(e);
      }
      lane.flags.reserve(positions);
      for (std::uint64_t p = 0; p < positions; ++p) {
        lane.flags.push_back(cur.u8());
      }
      const std::uint64_t entries = cur.u64();
      if (!lane.rec_end.empty() && lane.rec_end.back() != entries) {
        throw HorusError(
            "clock table: lane entry count disagrees with offsets (corrupt)");
      }
      lane.entry_tl.reserve(entries);
      for (std::uint64_t e = 0; e < entries; ++e) {
        lane.entry_tl.push_back(cur.i32());
      }
      lane.entry_val.reserve(entries);
      for (std::uint64_t e = 0; e < entries; ++e) {
        lane.entry_val.push_back(cur.i32());
      }
    }
    const std::uint64_t overflow = cur.u64();
    for (std::uint64_t i = 0; i < overflow; ++i) {
      const std::uint64_t key = cur.u64();
      const std::uint32_t count = cur.u32();
      SparseRecord rec;
      rec.reserve(count);
      for (std::uint32_t e = 0; e < count; ++e) {
        const std::int32_t tl = cur.i32();
        const std::int32_t val = cur.i32();
        rec.emplace_back(tl, val);
      }
      table.overflow_.emplace(key, std::move(rec));
    }
  }

  if (!cur.done()) {
    throw HorusError("clock table: trailing bytes after record (corrupt)");
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::int32_t t = table.timeline_of_[v];
    if (t >= static_cast<std::int32_t>(timelines)) {
      throw HorusError("clock table: timeline id out of range (corrupt)");
    }
    if (version == '2' && table.lamport_[v] != 0) {
      if (t < 0) {
        throw HorusError("clock table: assigned node without timeline");
      }
      const std::int32_t pos = table.position_[v];
      if (pos < 1 ||
          static_cast<std::size_t>(pos) >
              table.lanes_[static_cast<std::size_t>(t)].rec_end.size()) {
        throw HorusError(
            "clock table: node position outside its lane (corrupt)");
      }
    }
  }
  return table;
}

// ---- assigner ---------------------------------------------------------------

LogicalClockAssigner::LogicalClockAssigner(ExecutionGraph& graph,
                                           Options options)
    : graph_(graph),
      options_(options),
      table_(options.mode, options.keyframe_interval) {}

std::int32_t LogicalClockAssigner::timeline_for_pool(std::uint32_t pool_id) {
  if (pool_id < timeline_of_pool_.size() &&
      timeline_of_pool_[pool_id] >= 0) {
    return timeline_of_pool_[pool_id];
  }
  const std::string name =
      graph_.store().interned_name(graph_.keys().timeline, pool_id);
  auto [tit, inserted] = table_.timeline_ids_.try_emplace(
      name, static_cast<std::int32_t>(table_.timeline_names_.size()));
  if (inserted) {
    table_.timeline_names_.push_back(name);
    table_.timeline_sizes_.push_back(0);
  }
  if (timeline_of_pool_.size() <= pool_id) {
    timeline_of_pool_.resize(pool_id + 1, -1);
  }
  timeline_of_pool_[pool_id] = tit->second;
  return tit->second;
}

void LogicalClockAssigner::merge_pred_vc(
    graph::NodeId pred, std::vector<std::int32_t>& acc) const {
  if (table_.mode_ == ClockMode::kFlat) {
    const ClockTable::VcSlot s = table_.vc_slots_[pred];
    const std::int32_t* pv = table_.vc_arena_.data() + s.offset;
    if (s.len > acc.size()) acc.resize(s.len, 0);
    for (std::uint32_t i = 0; i < s.len; ++i) {
      if (pv[i] > acc[i]) acc[i] = pv[i];
    }
    return;
  }
  table_.walk_sparse(
      table_.timeline_of_[pred], table_.position_[pred],
      [&](std::int32_t tl, std::int32_t val) {
        const auto i = static_cast<std::size_t>(tl);
        if (i >= acc.size()) acc.resize(i + 1, 0);
        if (val > acc[i]) acc[i] = val;
      });
}

void LogicalClockAssigner::store_new_vc(graph::NodeId v, std::int32_t t,
                                        std::int32_t pos,
                                        const std::vector<std::int32_t>& vc,
                                        std::vector<std::int32_t>& tp_scratch) {
  if (table_.mode_ == ClockMode::kSparse) {
    table_.append_sparse(v, t, pos, {vc.data(), vc.size()}, tp_scratch);
    return;
  }
  // Slot offsets are 32-bit; a flat arena past 2^32 elements would silently
  // wrap them into aliased clocks. At the timeline counts where that
  // happens the sparse backend is the answer anyway.
  if (table_.vc_arena_.size() + vc.size() >
      std::numeric_limits<std::uint32_t>::max()) {
    throw HorusError(
        "clock table: flat VC arena exceeds 32-bit slot addressing "
        "(switch to the sparse clock mode)");
  }
  table_.vc_slots_[v] = {static_cast<std::uint32_t>(table_.vc_arena_.size()),
                         static_cast<std::uint32_t>(vc.size())};
  table_.vc_arena_.insert(table_.vc_arena_.end(), vc.begin(), vc.end());
}

std::size_t LogicalClockAssigner::assign() {
  const graph::GraphStore& store = graph_.store();
  const ExecutionGraphKeys& keys = graph_.keys();
  const auto n = static_cast<graph::NodeId>(store.node_count());

  auto& lamport = table_.lamport_;
  auto& timeline_of = table_.timeline_of_;
  auto& position = table_.position_;

  if (lamport.size() < n) {
    lamport.resize(n, 0);
    if (table_.mode_ == ClockMode::kFlat) table_.vc_slots_.resize(n);
    timeline_of.resize(n, -1);
    position.resize(n, 0);
  }

  // Collect the unassigned region and its internal in-degrees.
  std::vector<graph::NodeId> frontier;
  std::vector<std::int32_t> indegree(n, 0);
  std::size_t unassigned = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (table_.assigned(v)) continue;
    ++unassigned;
    std::int32_t deg = 0;
    for (const graph::Edge& e : store.in_edges_snapshot(v)) {
      // in_edges store the source in .to; sources appended concurrently
      // (>= n) are ignored — the audit on the next pass heals if needed.
      if (e.to < n && !table_.assigned(e.to)) ++deg;
    }
    indegree[v] = deg;
    if (deg == 0) frontier.push_back(v);
  }
  if (unassigned == 0) return 0;

  std::size_t processed = 0;
  std::vector<std::int32_t> v_clock;     // scratch, reused across nodes
  std::vector<std::int32_t> tp_scratch;  // sparse delta base, reused
  while (!frontier.empty()) {
    const graph::NodeId v = frontier.back();
    frontier.pop_back();
    ++processed;

    // Timeline identity: an integer read from the interned timeline column —
    // no string materialisation per node.
    const std::uint32_t pool_id = store.interned_id(v, keys.timeline);
    if (pool_id == graph::InternedColumnView::kAbsent) {
      throw std::logic_error("clock assigner: node without timeline property");
    }
    const std::int32_t t = timeline_for_pool(pool_id);

    // Lamport clock: 1 + max over predecessors.
    std::int64_t lc = 1;
    // Vector clock: component-wise max over predecessors, then tick own
    // component to this event's position in its timeline.
    v_clock.clear();
    for (const graph::Edge& e : store.in_edges_snapshot(v)) {
      const graph::NodeId pred = e.to;
      if (pred >= n) continue;  // concurrently appended; healed next pass
      lc = std::max(lc, lamport[pred] + 1);
      merge_pred_vc(pred, v_clock);
    }
    const std::int32_t pos = ++table_.timeline_sizes_[static_cast<std::size_t>(t)];
    if (static_cast<std::size_t>(t) >= v_clock.size()) {
      v_clock.resize(static_cast<std::size_t>(t) + 1, 0);
    }
    v_clock[static_cast<std::size_t>(t)] = pos;

    lamport[v] = lc;
    timeline_of[v] = t;
    position[v] = pos;
    // Store the clock (flat: append to the arena — predecessors' spans were
    // fully consumed above, so the potential reallocation is safe; sparse:
    // append the delta/keyframe record to the timeline's lane).
    store_new_vc(v, t, pos, v_clock, tp_scratch);

    if (options_.write_lamport_property) {
      graph_.store().set_property(v, keys.lamport, lc);
    }

    for (const graph::Edge& e : store.out_edges_snapshot(v)) {
      // Nodes appended by a concurrent writer after this pass started are
      // outside `indegree`; they are picked up by the next pass.
      if (e.to >= n) continue;
      if (table_.assigned(e.to)) continue;
      if (--indegree[e.to] == 0) frontier.push_back(e.to);
    }
  }

  if (processed != unassigned) {
    throw std::logic_error(
        "clock assigner: cycle detected in causal graph (" +
        std::to_string(unassigned - processed) + " nodes unreachable)");
  }
  return processed;
}

std::size_t LogicalClockAssigner::reassign_all() {
  table_ = ClockTable{options_.mode, options_.keyframe_interval};
  timeline_of_pool_.clear();  // table timeline ids were dropped with the table
  return assign();
}

std::size_t LogicalClockAssigner::repair(
    std::span<const graph::NodeId> dirty_roots) {
  const graph::GraphStore& store = graph_.store();
  const ExecutionGraphKeys& keys = graph_.keys();
  const auto n = static_cast<graph::NodeId>(store.node_count());

  // Forward closure of the roots over assigned nodes. Unassigned successors
  // are left to the next assign() pass, which reads the repaired
  // predecessors anyway. The closure follows every out-edge — including the
  // intra chain — so in sparse mode it contains every delta descendant of a
  // raised clock: each rewritten delta's base is final before the rewrite.
  std::unordered_set<graph::NodeId> dirty;
  std::vector<graph::NodeId> stack;
  for (const graph::NodeId r : dirty_roots) {
    if (r < n && table_.assigned(r) && dirty.insert(r).second) {
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const graph::NodeId v = stack.back();
    stack.pop_back();
    for (const graph::Edge& e : store.out_edges_snapshot(v)) {
      if (e.to >= n || !table_.assigned(e.to)) continue;
      if (dirty.insert(e.to).second) stack.push_back(e.to);
    }
  }
  if (dirty.empty()) return 0;

  // Kahn over the dirty subgraph: in-degrees count dirty predecessors only;
  // clean predecessors already hold their final clocks.
  std::unordered_map<graph::NodeId, std::int32_t> indegree;
  std::vector<graph::NodeId> frontier;
  for (const graph::NodeId v : dirty) {
    std::int32_t deg = 0;
    for (const graph::Edge& e : store.in_edges_snapshot(v)) {
      if (e.to < n && dirty.contains(e.to)) ++deg;
    }
    indegree[v] = deg;
    if (deg == 0) frontier.push_back(v);
  }

  std::size_t processed = 0;
  std::vector<std::int32_t> v_clock;     // scratch, reused across nodes
  std::vector<std::int32_t> tp_scratch;  // sparse delta base, reused
  while (!frontier.empty()) {
    const graph::NodeId v = frontier.back();
    frontier.pop_back();
    ++processed;

    // Same recurrences as assign(): the canonical values are unique, so
    // recomputing them over final predecessor clocks reproduces exactly what
    // a from-scratch pass would produce (HealsAfterLateEdge asserts this).
    std::int64_t lc = 1;
    v_clock.clear();
    for (const graph::Edge& e : store.in_edges_snapshot(v)) {
      const graph::NodeId pred = e.to;
      if (pred >= n || !table_.assigned(pred)) continue;
      lc = std::max(lc, table_.lamport_[pred] + 1);
      merge_pred_vc(pred, v_clock);
    }
    const auto t = static_cast<std::size_t>(table_.timeline_of_[v]);
    if (t >= v_clock.size()) v_clock.resize(t + 1, 0);
    v_clock[t] = table_.position_[v];

    if (lc != table_.lamport_[v]) {
      table_.lamport_[v] = lc;
      if (options_.write_lamport_property) {
        graph_.store().set_property(v, keys.lamport, lc);
      }
    }
    if (table_.mode_ == ClockMode::kSparse) {
      // Always rewrite: even when v's own vector is unchanged its delta base
      // may have been repaired this pass, and the stored delta must stay
      // relative to the final predecessor record.
      table_.rewrite_sparse(v, static_cast<std::int32_t>(t),
                            table_.position_[v], {v_clock.data(),
                            v_clock.size()}, tp_scratch);
    } else {
      // Overwrite the arena slot in place when the raised clock fits
      // (clearing any stale tail — absent components read as zero);
      // otherwise append a fresh slot and abandon the old one (reclaimed by
      // the next reassign_all).
      ClockTable::VcSlot& slot = table_.vc_slots_[v];
      if (v_clock.size() <= slot.len) {
        const auto base =
            table_.vc_arena_.begin() + static_cast<std::ptrdiff_t>(slot.offset);
        std::copy(v_clock.begin(), v_clock.end(), base);
        std::fill(base + static_cast<std::ptrdiff_t>(v_clock.size()),
                  base + static_cast<std::ptrdiff_t>(slot.len), 0);
      } else {
        if (table_.vc_arena_.size() + v_clock.size() >
            std::numeric_limits<std::uint32_t>::max()) {
          throw HorusError(
              "clock table: flat VC arena exceeds 32-bit slot addressing "
              "(switch to the sparse clock mode)");
        }
        slot = {static_cast<std::uint32_t>(table_.vc_arena_.size()),
                static_cast<std::uint32_t>(v_clock.size())};
        table_.vc_arena_.insert(table_.vc_arena_.end(), v_clock.begin(),
                                v_clock.end());
      }
    }

    for (const graph::Edge& e : store.out_edges_snapshot(v)) {
      if (e.to >= n) continue;
      const auto it = indegree.find(e.to);
      if (it != indegree.end() && --it->second == 0) {
        frontier.push_back(e.to);
      }
    }
  }

  if (processed != dirty.size()) {
    throw std::logic_error(
        "clock assigner: cycle detected in repair region (" +
        std::to_string(dirty.size() - processed) + " nodes unreachable)");
  }
  return processed;
}

void LogicalClockAssigner::restore(ClockTable table) {
  table_ = std::move(table);
  // The restored table's timeline ids were minted against the pre-crash
  // store; the cache must be rebuilt lazily against the current interning.
  timeline_of_pool_.clear();
}

}  // namespace horus
