#include "core/logical_clocks.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "common/crc32.h"
#include "common/error.h"

namespace horus {

namespace {

// Little-endian scalar framing for the clock-table record. Everything is
// serialized into one payload string first so the CRC and the length prefix
// cover the exact bytes on the wire.
void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_i32(std::string& buf, std::int32_t v) {
  put_u32(buf, static_cast<std::uint32_t>(v));
}

void put_i64(std::string& buf, std::int64_t v) {
  put_u64(buf, static_cast<std::uint64_t>(v));
}

/// Bounds-checked cursor over the loaded payload; short reads surface as
/// HorusError instead of UB.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  std::uint32_t u32() {
    std::uint32_t v = 0;
    const auto* p = bytes(4);
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    }
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    const auto* p = bytes(8);
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    }
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::string str(std::size_t len) {
    const char* p = bytes(len);
    return std::string(p, len);
  }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  const char* bytes(std::size_t n) {
    if (data_.size() - pos_ < n) {
      throw HorusError("clock table: truncated record (payload short read)");
    }
    const char* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

constexpr char kClockMagic[8] = {'H', 'O', 'R', 'U', 'S', 'V', 'C', '1'};

}  // namespace

bool ClockTable::happens_before(graph::NodeId a, graph::NodeId b) const {
  if (a == b) return false;
  if (!assigned(a) || !assigned(b)) return false;
  const auto ta = static_cast<std::size_t>(timeline_of_[a]);
  const auto vb = vc(b);
  if (ta >= vb.size()) return false;  // timeline(a) unknown to b => no path
  return vb[ta] >= position_[a];
}

bool ClockTable::vc_less(graph::NodeId a, graph::NodeId b) const {
  if (!assigned(a) || !assigned(b)) return false;
  const auto va = vc(a);
  const auto vb = vc(b);
  const std::size_t n = std::max(va.size(), vb.size());
  bool strictly = false;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t x = i < va.size() ? va[i] : 0;
    const std::int32_t y = i < vb.size() ? vb[i] : 0;
    if (x > y) return false;
    if (x < y) strictly = true;
  }
  return strictly;
}

std::string ClockTable::vc_string(graph::NodeId node) const {
  std::string out = "[";
  const auto v = vc(node);
  for (std::size_t i = 0; i < timeline_names_.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(i < v.size() ? v[i] : 0);
  }
  out += ']';
  return out;
}

void ClockTable::save(std::ostream& out) const {
  std::string payload;
  const std::uint64_t n = lamport_.size();
  payload.reserve(64 + n * 24 + vc_arena_.size() * 4);
  put_u64(payload, n);
  for (const std::int64_t lc : lamport_) put_i64(payload, lc);
  put_u64(payload, vc_arena_.size());
  for (const std::int32_t c : vc_arena_) put_i32(payload, c);
  for (const VcSlot& s : vc_slots_) {
    put_u32(payload, s.offset);
    put_u32(payload, s.len);
  }
  for (const std::int32_t t : timeline_of_) put_i32(payload, t);
  for (const std::int32_t p : position_) put_i32(payload, p);
  put_u64(payload, timeline_names_.size());
  for (std::size_t i = 0; i < timeline_names_.size(); ++i) {
    put_u32(payload, static_cast<std::uint32_t>(timeline_names_[i].size()));
    payload += timeline_names_[i];
    put_i32(payload, timeline_sizes_[i]);
  }

  const std::uint32_t crc = crc32(payload);
  std::string frame;
  frame.reserve(sizeof(kClockMagic) + 8 + payload.size() + 4);
  frame.append(kClockMagic, sizeof(kClockMagic));
  put_u64(frame, payload.size());
  frame += payload;
  put_u32(frame, crc);
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  if (!out) throw HorusError("clock table: write failed");
}

ClockTable ClockTable::load(std::istream& in) {
  char magic[sizeof(kClockMagic)];
  if (!in.read(magic, sizeof(magic)) ||
      !std::equal(magic, magic + sizeof(magic), kClockMagic)) {
    throw HorusError("clock table: bad magic (not a clock-table record)");
  }
  char len_bytes[8];
  if (!in.read(len_bytes, sizeof(len_bytes))) {
    throw HorusError("clock table: truncated record (missing length)");
  }
  std::uint64_t payload_len = 0;
  for (int i = 0; i < 8; ++i) {
    payload_len |=
        static_cast<std::uint64_t>(static_cast<unsigned char>(len_bytes[i]))
        << (8 * i);
  }
  // An absurd length means a corrupt length field; refuse before allocating.
  if (payload_len > (1ULL << 36)) {
    throw HorusError("clock table: implausible payload length (corrupt)");
  }
  std::string payload(payload_len, '\0');
  if (!in.read(payload.data(), static_cast<std::streamsize>(payload_len))) {
    throw HorusError("clock table: truncated record (payload short read)");
  }
  char crc_bytes[4];
  if (!in.read(crc_bytes, sizeof(crc_bytes))) {
    throw HorusError("clock table: truncated record (missing CRC trailer)");
  }
  std::uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |=
        static_cast<std::uint32_t>(static_cast<unsigned char>(crc_bytes[i]))
        << (8 * i);
  }
  if (crc32(payload) != stored_crc) {
    throw HorusError("clock table: CRC mismatch (corrupt record)");
  }
  // A clocks.bin holds exactly one record; bytes after the CRC trailer mean
  // the file was mangled (e.g. two writes interleaved), not a longer table.
  if (in.peek() != std::istream::traits_type::eof()) {
    throw HorusError("clock table: data after the CRC trailer (corrupt)");
  }

  Cursor cur(payload);
  ClockTable table;
  const std::uint64_t n = cur.u64();
  table.lamport_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) table.lamport_.push_back(cur.i64());
  const std::uint64_t arena = cur.u64();
  table.vc_arena_.reserve(arena);
  for (std::uint64_t i = 0; i < arena; ++i) {
    table.vc_arena_.push_back(cur.i32());
  }
  table.vc_slots_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    VcSlot s;
    s.offset = cur.u32();
    s.len = cur.u32();
    if (static_cast<std::uint64_t>(s.offset) + s.len > arena) {
      throw HorusError("clock table: VC slot outside arena (corrupt record)");
    }
    table.vc_slots_.push_back(s);
  }
  table.timeline_of_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) table.timeline_of_.push_back(cur.i32());
  table.position_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) table.position_.push_back(cur.i32());
  const std::uint64_t timelines = cur.u64();
  for (std::uint64_t i = 0; i < timelines; ++i) {
    const std::uint32_t name_len = cur.u32();
    std::string name = cur.str(name_len);
    table.timeline_ids_.try_emplace(name,
                                    static_cast<std::int32_t>(i));
    table.timeline_names_.push_back(std::move(name));
    table.timeline_sizes_.push_back(cur.i32());
  }
  if (!cur.done()) {
    throw HorusError("clock table: trailing bytes after record (corrupt)");
  }
  for (const std::int32_t t : table.timeline_of_) {
    if (t >= static_cast<std::int32_t>(timelines)) {
      throw HorusError("clock table: timeline id out of range (corrupt)");
    }
  }
  return table;
}

LogicalClockAssigner::LogicalClockAssigner(ExecutionGraph& graph,
                                           Options options)
    : graph_(graph), options_(options) {}

std::int32_t LogicalClockAssigner::timeline_for_pool(std::uint32_t pool_id) {
  if (pool_id < timeline_of_pool_.size() &&
      timeline_of_pool_[pool_id] >= 0) {
    return timeline_of_pool_[pool_id];
  }
  const std::string name =
      graph_.store().interned_name(graph_.keys().timeline, pool_id);
  auto [tit, inserted] = table_.timeline_ids_.try_emplace(
      name, static_cast<std::int32_t>(table_.timeline_names_.size()));
  if (inserted) {
    table_.timeline_names_.push_back(name);
    table_.timeline_sizes_.push_back(0);
  }
  if (timeline_of_pool_.size() <= pool_id) {
    timeline_of_pool_.resize(pool_id + 1, -1);
  }
  timeline_of_pool_[pool_id] = tit->second;
  return tit->second;
}

std::size_t LogicalClockAssigner::assign() {
  const graph::GraphStore& store = graph_.store();
  const ExecutionGraphKeys& keys = graph_.keys();
  const auto n = static_cast<graph::NodeId>(store.node_count());

  auto& lamport = table_.lamport_;
  auto& timeline_of = table_.timeline_of_;
  auto& position = table_.position_;

  if (lamport.size() < n) {
    lamport.resize(n, 0);
    table_.vc_slots_.resize(n);
    timeline_of.resize(n, -1);
    position.resize(n, 0);
  }

  // Collect the unassigned region and its internal in-degrees.
  std::vector<graph::NodeId> frontier;
  std::vector<std::int32_t> indegree(n, 0);
  std::size_t unassigned = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (table_.assigned(v)) continue;
    ++unassigned;
    std::int32_t deg = 0;
    for (const graph::Edge& e : store.in_edges_snapshot(v)) {
      // in_edges store the source in .to; sources appended concurrently
      // (>= n) are ignored — the audit on the next pass heals if needed.
      if (e.to < n && !table_.assigned(e.to)) ++deg;
    }
    indegree[v] = deg;
    if (deg == 0) frontier.push_back(v);
  }
  if (unassigned == 0) return 0;

  std::size_t processed = 0;
  std::vector<std::int32_t> v_clock;  // scratch, reused across nodes
  while (!frontier.empty()) {
    const graph::NodeId v = frontier.back();
    frontier.pop_back();
    ++processed;

    // Timeline identity: an integer read from the interned timeline column —
    // no string materialisation per node.
    const std::uint32_t pool_id = store.interned_id(v, keys.timeline);
    if (pool_id == graph::InternedColumnView::kAbsent) {
      throw std::logic_error("clock assigner: node without timeline property");
    }
    const std::int32_t t = timeline_for_pool(pool_id);

    // Lamport clock: 1 + max over predecessors.
    std::int64_t lc = 1;
    // Vector clock: component-wise max over predecessors, then tick own
    // component to this event's position in its timeline.
    v_clock.clear();
    for (const graph::Edge& e : store.in_edges_snapshot(v)) {
      const graph::NodeId pred = e.to;
      if (pred >= n) continue;  // concurrently appended; healed next pass
      lc = std::max(lc, lamport[pred] + 1);
      const auto pv = table_.vc(pred);
      if (pv.size() > v_clock.size()) v_clock.resize(pv.size(), 0);
      for (std::size_t i = 0; i < pv.size(); ++i) {
        v_clock[i] = std::max(v_clock[i], pv[i]);
      }
    }
    const std::int32_t pos = ++table_.timeline_sizes_[static_cast<std::size_t>(t)];
    if (static_cast<std::size_t>(t) >= v_clock.size()) {
      v_clock.resize(static_cast<std::size_t>(t) + 1, 0);
    }
    v_clock[static_cast<std::size_t>(t)] = pos;

    lamport[v] = lc;
    // Append the clock to the flat arena; predecessors' spans were fully
    // consumed above, so the potential reallocation here is safe.
    table_.vc_slots_[v] = {static_cast<std::uint32_t>(table_.vc_arena_.size()),
                           static_cast<std::uint32_t>(v_clock.size())};
    table_.vc_arena_.insert(table_.vc_arena_.end(), v_clock.begin(),
                            v_clock.end());
    timeline_of[v] = t;
    position[v] = pos;

    if (options_.write_lamport_property) {
      graph_.store().set_property(v, keys.lamport, lc);
    }

    for (const graph::Edge& e : store.out_edges_snapshot(v)) {
      // Nodes appended by a concurrent writer after this pass started are
      // outside `indegree`; they are picked up by the next pass.
      if (e.to >= n) continue;
      if (table_.assigned(e.to)) continue;
      if (--indegree[e.to] == 0) frontier.push_back(e.to);
    }
  }

  if (processed != unassigned) {
    throw std::logic_error(
        "clock assigner: cycle detected in causal graph (" +
        std::to_string(unassigned - processed) + " nodes unreachable)");
  }
  return processed;
}

std::size_t LogicalClockAssigner::reassign_all() {
  table_ = ClockTable{};
  timeline_of_pool_.clear();  // table timeline ids were dropped with the table
  return assign();
}

std::size_t LogicalClockAssigner::repair(
    std::span<const graph::NodeId> dirty_roots) {
  const graph::GraphStore& store = graph_.store();
  const ExecutionGraphKeys& keys = graph_.keys();
  const auto n = static_cast<graph::NodeId>(store.node_count());

  // Forward closure of the roots over assigned nodes. Unassigned successors
  // are left to the next assign() pass, which reads the repaired
  // predecessors anyway.
  std::unordered_set<graph::NodeId> dirty;
  std::vector<graph::NodeId> stack;
  for (const graph::NodeId r : dirty_roots) {
    if (r < n && table_.assigned(r) && dirty.insert(r).second) {
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const graph::NodeId v = stack.back();
    stack.pop_back();
    for (const graph::Edge& e : store.out_edges_snapshot(v)) {
      if (e.to >= n || !table_.assigned(e.to)) continue;
      if (dirty.insert(e.to).second) stack.push_back(e.to);
    }
  }
  if (dirty.empty()) return 0;

  // Kahn over the dirty subgraph: in-degrees count dirty predecessors only;
  // clean predecessors already hold their final clocks.
  std::unordered_map<graph::NodeId, std::int32_t> indegree;
  std::vector<graph::NodeId> frontier;
  for (const graph::NodeId v : dirty) {
    std::int32_t deg = 0;
    for (const graph::Edge& e : store.in_edges_snapshot(v)) {
      if (e.to < n && dirty.contains(e.to)) ++deg;
    }
    indegree[v] = deg;
    if (deg == 0) frontier.push_back(v);
  }

  std::size_t processed = 0;
  std::vector<std::int32_t> v_clock;  // scratch, reused across nodes
  while (!frontier.empty()) {
    const graph::NodeId v = frontier.back();
    frontier.pop_back();
    ++processed;

    // Same recurrences as assign(): the canonical values are unique, so
    // recomputing them over final predecessor clocks reproduces exactly what
    // a from-scratch pass would produce (HealsAfterLateEdge asserts this).
    std::int64_t lc = 1;
    v_clock.clear();
    for (const graph::Edge& e : store.in_edges_snapshot(v)) {
      const graph::NodeId pred = e.to;
      if (pred >= n || !table_.assigned(pred)) continue;
      lc = std::max(lc, table_.lamport_[pred] + 1);
      const auto pv = table_.vc(pred);
      if (pv.size() > v_clock.size()) v_clock.resize(pv.size(), 0);
      for (std::size_t i = 0; i < pv.size(); ++i) {
        v_clock[i] = std::max(v_clock[i], pv[i]);
      }
    }
    const auto t = static_cast<std::size_t>(table_.timeline_of_[v]);
    if (t >= v_clock.size()) v_clock.resize(t + 1, 0);
    v_clock[t] = table_.position_[v];

    if (lc != table_.lamport_[v]) {
      table_.lamport_[v] = lc;
      if (options_.write_lamport_property) {
        graph_.store().set_property(v, keys.lamport, lc);
      }
    }
    // Overwrite the arena slot in place when the raised clock fits (clearing
    // any stale tail — absent components read as zero); otherwise append a
    // fresh slot and abandon the old one (reclaimed by the next
    // reassign_all).
    ClockTable::VcSlot& slot = table_.vc_slots_[v];
    if (v_clock.size() <= slot.len) {
      const auto base =
          table_.vc_arena_.begin() + static_cast<std::ptrdiff_t>(slot.offset);
      std::copy(v_clock.begin(), v_clock.end(), base);
      std::fill(base + static_cast<std::ptrdiff_t>(v_clock.size()),
                base + static_cast<std::ptrdiff_t>(slot.len), 0);
    } else {
      slot = {static_cast<std::uint32_t>(table_.vc_arena_.size()),
              static_cast<std::uint32_t>(v_clock.size())};
      table_.vc_arena_.insert(table_.vc_arena_.end(), v_clock.begin(),
                              v_clock.end());
    }

    for (const graph::Edge& e : store.out_edges_snapshot(v)) {
      if (e.to >= n) continue;
      const auto it = indegree.find(e.to);
      if (it != indegree.end() && --it->second == 0) {
        frontier.push_back(e.to);
      }
    }
  }

  if (processed != dirty.size()) {
    throw std::logic_error(
        "clock assigner: cycle detected in repair region (" +
        std::to_string(dirty.size() - processed) + " nodes unreachable)");
  }
  return processed;
}

void LogicalClockAssigner::restore(ClockTable table) {
  table_ = std::move(table);
  // The restored table's timeline ids were minted against the pre-crash
  // store; the cache must be rebuilt lazily against the current interning.
  timeline_of_pool_.clear();
}

}  // namespace horus
