#include "core/logical_clocks.h"

#include <algorithm>
#include <stdexcept>

namespace horus {

bool ClockTable::happens_before(graph::NodeId a, graph::NodeId b) const {
  if (a == b) return false;
  if (!assigned(a) || !assigned(b)) return false;
  const auto ta = static_cast<std::size_t>(timeline_of_[a]);
  const auto vb = vc(b);
  if (ta >= vb.size()) return false;  // timeline(a) unknown to b => no path
  return vb[ta] >= position_[a];
}

bool ClockTable::vc_less(graph::NodeId a, graph::NodeId b) const {
  if (!assigned(a) || !assigned(b)) return false;
  const auto va = vc(a);
  const auto vb = vc(b);
  const std::size_t n = std::max(va.size(), vb.size());
  bool strictly = false;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t x = i < va.size() ? va[i] : 0;
    const std::int32_t y = i < vb.size() ? vb[i] : 0;
    if (x > y) return false;
    if (x < y) strictly = true;
  }
  return strictly;
}

std::string ClockTable::vc_string(graph::NodeId node) const {
  std::string out = "[";
  const auto v = vc(node);
  for (std::size_t i = 0; i < timeline_names_.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(i < v.size() ? v[i] : 0);
  }
  out += ']';
  return out;
}

LogicalClockAssigner::LogicalClockAssigner(ExecutionGraph& graph,
                                           Options options)
    : graph_(graph), options_(options) {}

std::int32_t LogicalClockAssigner::timeline_for_pool(std::uint32_t pool_id) {
  if (pool_id < timeline_of_pool_.size() &&
      timeline_of_pool_[pool_id] >= 0) {
    return timeline_of_pool_[pool_id];
  }
  const std::string name =
      graph_.store().interned_name(graph_.keys().timeline, pool_id);
  auto [tit, inserted] = table_.timeline_ids_.try_emplace(
      name, static_cast<std::int32_t>(table_.timeline_names_.size()));
  if (inserted) {
    table_.timeline_names_.push_back(name);
    table_.timeline_sizes_.push_back(0);
  }
  if (timeline_of_pool_.size() <= pool_id) {
    timeline_of_pool_.resize(pool_id + 1, -1);
  }
  timeline_of_pool_[pool_id] = tit->second;
  return tit->second;
}

std::size_t LogicalClockAssigner::assign() {
  const graph::GraphStore& store = graph_.store();
  const ExecutionGraphKeys& keys = graph_.keys();
  const auto n = static_cast<graph::NodeId>(store.node_count());

  auto& lamport = table_.lamport_;
  auto& timeline_of = table_.timeline_of_;
  auto& position = table_.position_;

  if (lamport.size() < n) {
    lamport.resize(n, 0);
    table_.vc_slots_.resize(n);
    timeline_of.resize(n, -1);
    position.resize(n, 0);
  }

  // Collect the unassigned region and its internal in-degrees.
  std::vector<graph::NodeId> frontier;
  std::vector<std::int32_t> indegree(n, 0);
  std::size_t unassigned = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (table_.assigned(v)) continue;
    ++unassigned;
    std::int32_t deg = 0;
    for (const graph::Edge& e : store.in_edges_snapshot(v)) {
      // in_edges store the source in .to; sources appended concurrently
      // (>= n) are ignored — the audit on the next pass heals if needed.
      if (e.to < n && !table_.assigned(e.to)) ++deg;
    }
    indegree[v] = deg;
    if (deg == 0) frontier.push_back(v);
  }
  if (unassigned == 0) return 0;

  std::size_t processed = 0;
  std::vector<std::int32_t> v_clock;  // scratch, reused across nodes
  while (!frontier.empty()) {
    const graph::NodeId v = frontier.back();
    frontier.pop_back();
    ++processed;

    // Timeline identity: an integer read from the interned timeline column —
    // no string materialisation per node.
    const std::uint32_t pool_id = store.interned_id(v, keys.timeline);
    if (pool_id == graph::InternedColumnView::kAbsent) {
      throw std::logic_error("clock assigner: node without timeline property");
    }
    const std::int32_t t = timeline_for_pool(pool_id);

    // Lamport clock: 1 + max over predecessors.
    std::int64_t lc = 1;
    // Vector clock: component-wise max over predecessors, then tick own
    // component to this event's position in its timeline.
    v_clock.clear();
    for (const graph::Edge& e : store.in_edges_snapshot(v)) {
      const graph::NodeId pred = e.to;
      if (pred >= n) continue;  // concurrently appended; healed next pass
      lc = std::max(lc, lamport[pred] + 1);
      const auto pv = table_.vc(pred);
      if (pv.size() > v_clock.size()) v_clock.resize(pv.size(), 0);
      for (std::size_t i = 0; i < pv.size(); ++i) {
        v_clock[i] = std::max(v_clock[i], pv[i]);
      }
    }
    const std::int32_t pos = ++table_.timeline_sizes_[static_cast<std::size_t>(t)];
    if (static_cast<std::size_t>(t) >= v_clock.size()) {
      v_clock.resize(static_cast<std::size_t>(t) + 1, 0);
    }
    v_clock[static_cast<std::size_t>(t)] = pos;

    lamport[v] = lc;
    // Append the clock to the flat arena; predecessors' spans were fully
    // consumed above, so the potential reallocation here is safe.
    table_.vc_slots_[v] = {static_cast<std::uint32_t>(table_.vc_arena_.size()),
                           static_cast<std::uint32_t>(v_clock.size())};
    table_.vc_arena_.insert(table_.vc_arena_.end(), v_clock.begin(),
                            v_clock.end());
    timeline_of[v] = t;
    position[v] = pos;

    if (options_.write_lamport_property) {
      graph_.store().set_property(v, keys.lamport, lc);
    }

    for (const graph::Edge& e : store.out_edges_snapshot(v)) {
      // Nodes appended by a concurrent writer after this pass started are
      // outside `indegree`; they are picked up by the next pass.
      if (e.to >= n) continue;
      if (table_.assigned(e.to)) continue;
      if (--indegree[e.to] == 0) frontier.push_back(e.to);
    }
  }

  if (processed != unassigned) {
    throw std::logic_error(
        "clock assigner: cycle detected in causal graph (" +
        std::to_string(unassigned - processed) + " nodes unreachable)");
  }
  return processed;
}

std::size_t LogicalClockAssigner::reassign_all() {
  table_ = ClockTable{};
  timeline_of_pool_.clear();  // table timeline ids were dropped with the table
  return assign();
}

}  // namespace horus
