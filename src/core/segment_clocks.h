// Glue between the core clock machinery and the graph-layer SegmentManager.
//
// src/graph must not depend on src/core, so SegmentManager takes its clock
// data through the graph::ClockLookup function type. This header provides
// the adapter over a ClockTable plus two convenience entry points used by
// everything that owns both halves (Horus facade, ClockDaemon, service):
// enabling segmentation on an ExecutionGraph with the schema's summarised
// keys pre-resolved, and refreshing the VC summaries after an assignment
// pass.
#pragma once

#include "core/execution_graph.h"
#include "core/logical_clocks.h"
#include "graph/segment.h"

namespace horus {

/// ClockLookup view over a ClockTable. The table must outlive the returned
/// function and must not be concurrently reassigned while summaries build
/// (callers run it after a tick/seal, which holds the relevant lock).
///
/// The produced span is backed by a thread-local scratch (sparse tables
/// reconstruct into it; flat tables hand out an arena view) — parallel
/// summary builds share one lookup across pool threads, and the summary
/// builder consumes each span before requesting the next node, so
/// thread-local is exactly the required lifetime.
[[nodiscard]] inline graph::ClockLookup segment_clock_lookup(
    const ClockTable& clocks) {
  return [&clocks](graph::NodeId node, std::int32_t& timeline,
                   std::int32_t& position,
                   std::span<const std::int32_t>& vc) {
    if (!clocks.assigned(node)) return false;
    timeline = clocks.timeline_of(node);
    position = clocks.position(node);
    static thread_local std::vector<std::int32_t> scratch;
    vc = clocks.vc_span(node, scratch);
    return timeline >= 0 && position > 0;
  };
}

/// Enables segmented storage on an execution graph, wiring the summarised
/// integer keys (lamportLogicalTime, timestamp) from the resolved schema.
inline graph::SegmentManager& enable_segments(ExecutionGraph& graph,
                                              graph::SegmentOptions options) {
  options.lamport_key = graph.keys().lamport;
  options.timestamp_key = graph.keys().timestamp;
  return graph.store().enable_segments(options);
}

/// Refreshes stale VC summaries from `clocks` (no-op when the store is not
/// segmented). `force` rebuilds fresh ones too — used after a heal, where
/// every clock may have changed without any store write. Returns summaries
/// rebuilt.
inline std::size_t update_segment_summaries(graph::GraphStore& store,
                                            const ClockTable& clocks,
                                            bool force = false,
                                            ThreadPool* pool = nullptr,
                                            unsigned threads = 1) {
  graph::SegmentManager* segments = store.segments();
  if (segments == nullptr) return 0;
  return segments->update_summaries(segment_clock_lookup(clocks), force, pool,
                                    threads);
}

}  // namespace horus
