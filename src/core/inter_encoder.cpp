#include "core/inter_encoder.h"

#include <algorithm>

namespace horus {

// ---------------------------------------------------------------------------
// MessageDeliveryRule
// ---------------------------------------------------------------------------

void MessageDeliveryRule::on_event(const Event& event,
                                   std::vector<CausalPair>& out) {
  const auto* net = event.net();
  if (net == nullptr || net->size == 0) return;
  if (event.type != EventType::kSnd && event.type != EventType::kRcv) return;

  ChannelState& state = channels_[net->channel];
  Range range{event.id, net->offset, net->offset + net->size};
  if (event.type == EventType::kSnd) {
    state.sends.push_back(range);
  } else {
    state.receives.push_back(range);
  }
  ++pending_;
  match(state, out);
}

void MessageDeliveryRule::match(ChannelState& state,
                                std::vector<CausalPair>& out) {
  // Both queues are ordered by byte offset (TCP order). A send pairs with
  // every receive overlapping its [begin, end) range. A send is retired once
  // receives have covered it entirely; a receive is retired once sends have
  // covered it entirely. Because either side can arrive at the encoder
  // first, matching advances whichever side is complete.
  while (!state.sends.empty() && !state.receives.empty()) {
    Range& snd = state.sends.front();
    Range& rcv = state.receives.front();
    if (snd.end <= rcv.begin) {
      // Send fully below the first pending receive: every receive for it was
      // already matched (they arrive in offset order), so retire it.
      state.sends.pop_front();
      --pending_;
      continue;
    }
    if (rcv.end <= snd.begin) {
      state.receives.pop_front();
      --pending_;
      continue;
    }
    // Overlap: emit the causal pair.
    out.push_back(CausalPair{snd.id, rcv.id, name()});
    // Retire whichever range finishes first; keep the other for further
    // overlaps (one SND -> many partial RCVs, or one RCV covering many SNDs).
    // Copy the bounds first: pop_front invalidates the front references.
    const std::uint64_t snd_end = snd.end;
    const std::uint64_t rcv_end = rcv.end;
    if (snd_end <= rcv_end) {
      state.sends.pop_front();
      --pending_;
      if (rcv_end == snd_end) {
        state.receives.pop_front();
        --pending_;
      }
    } else {
      state.receives.pop_front();
      --pending_;
    }
  }
}

std::size_t MessageDeliveryRule::pending() const noexcept { return pending_; }

void MessageDeliveryRule::collect_pending(std::vector<EventId>& out) const {
  for (const auto& [channel, state] : channels_) {
    // Deque order is byte-offset order — the order a replay must preserve.
    for (const Range& r : state.sends) out.push_back(r.id);
    for (const Range& r : state.receives) out.push_back(r.id);
  }
}

// ---------------------------------------------------------------------------
// ConnectionRule
// ---------------------------------------------------------------------------

void ConnectionRule::on_event(const Event& event,
                              std::vector<CausalPair>& out) {
  const auto* net = event.net();
  if (net == nullptr) return;
  if (event.type == EventType::kConnect) {
    if (auto it = accepts_.find(net->channel); it != accepts_.end()) {
      out.push_back(CausalPair{event.id, it->second, name()});
      accepts_.erase(it);
    } else {
      connects_.emplace(net->channel, event.id);
    }
  } else if (event.type == EventType::kAccept) {
    if (auto it = connects_.find(net->channel); it != connects_.end()) {
      out.push_back(CausalPair{it->second, event.id, name()});
      connects_.erase(it);
    } else {
      accepts_.emplace(net->channel, event.id);
    }
  }
}

std::size_t ConnectionRule::pending() const noexcept {
  return connects_.size() + accepts_.size();
}

void ConnectionRule::collect_pending(std::vector<EventId>& out) const {
  for (const auto& [channel, id] : connects_) out.push_back(id);
  for (const auto& [channel, id] : accepts_) out.push_back(id);
}

// ---------------------------------------------------------------------------
// LifecycleRule
// ---------------------------------------------------------------------------

void LifecycleRule::on_event(const Event& event, std::vector<CausalPair>& out) {
  switch (event.type) {
    case EventType::kCreate:
    case EventType::kFork: {
      const auto* c = event.child();
      if (c == nullptr) return;
      if (auto it = starts_.find(c->child); it != starts_.end()) {
        out.push_back(CausalPair{event.id, it->second, name()});
        starts_.erase(it);
      } else {
        creates_.emplace(c->child, event.id);
      }
      break;
    }
    case EventType::kStart: {
      if (auto it = creates_.find(event.thread); it != creates_.end()) {
        out.push_back(CausalPair{it->second, event.id, name()});
        creates_.erase(it);
      } else {
        starts_.emplace(event.thread, event.id);
      }
      break;
    }
    case EventType::kEnd: {
      if (auto it = joins_.find(event.thread); it != joins_.end()) {
        for (EventId join : it->second) {
          out.push_back(CausalPair{event.id, join, name()});
        }
        joins_.erase(it);
      }
      ends_.emplace(event.thread, event.id);
      break;
    }
    case EventType::kJoin: {
      const auto* c = event.child();
      if (c == nullptr) return;
      if (auto it = ends_.find(c->child); it != ends_.end()) {
        out.push_back(CausalPair{it->second, event.id, name()});
        // Keep the END: several threads may join the same child.
      } else {
        joins_[c->child].push_back(event.id);
      }
      break;
    }
    default:
      break;
  }
}

std::size_t LifecycleRule::pending() const noexcept {
  std::size_t n = creates_.size() + starts_.size();
  for (const auto& [thread, joins] : joins_) n += joins.size();
  return n;
}

void LifecycleRule::collect_pending(std::vector<EventId>& out) const {
  for (const auto& [thread, id] : creates_) out.push_back(id);
  for (const auto& [thread, id] : starts_) out.push_back(id);
  for (const auto& [thread, id] : ends_) out.push_back(id);
  for (const auto& [thread, joins] : joins_) {
    for (EventId id : joins) out.push_back(id);
  }
}

// ---------------------------------------------------------------------------
// InterProcessEncoder
// ---------------------------------------------------------------------------

InterProcessEncoder::InterProcessEncoder(ExecutionGraph& graph)
    : graph_(graph) {
  rules_.push_back(std::make_unique<MessageDeliveryRule>());
  rules_.push_back(std::make_unique<ConnectionRule>());
  rules_.push_back(std::make_unique<LifecycleRule>());
}

void InterProcessEncoder::add_rule(std::unique_ptr<CausalRule> rule) {
  rules_.push_back(std::move(rule));
}

void InterProcessEncoder::on_event(const Event& event) {
  if (spill_capture_) event_cache_.emplace(event.id, event);
  for (const auto& rule : rules_) {
    rule->on_event(event, complete_);
  }
}

void InterProcessEncoder::flush() {
  // During post-restore replay the relationship stream can run ahead of the
  // node stream: the dead incarnation's forwarded messages may pair up
  // before the replaying intra stage has re-flushed their nodes. Such pairs
  // stay buffered for a later flush (the nodes are guaranteed to arrive —
  // their events sit above the checkpointed intra offsets) instead of
  // failing the edge insert.
  std::vector<CausalPair> deferred;
  for (const CausalPair& pair : complete_) {
    if (!graph_.node_of(pair.from) || !graph_.node_of(pair.to)) {
      deferred.push_back(pair);
      continue;
    }
    graph_.add_inter_edge(pair.from, pair.to);
    ++edges_flushed_;
  }
  complete_ = std::move(deferred);
}

std::size_t InterProcessEncoder::pending() const noexcept {
  std::size_t n = 0;
  for (const auto& rule : rules_) n += rule->pending();
  return n;
}

std::vector<Event> InterProcessEncoder::snapshot_pending() {
  std::vector<EventId> ids;
  // Deferred pairs first: their events carry lower byte offsets than any
  // still-pending range on the same channel (they already matched), so
  // re-feeding them first preserves the per-channel offset order the
  // matcher relies on. Rehydration re-runs the match and re-creates the
  // pair, making deferred-but-uncommitted edges crash-durable.
  for (const CausalPair& pair : complete_) {
    ids.push_back(pair.from);
    ids.push_back(pair.to);
  }
  for (const auto& rule : rules_) rule->collect_pending(ids);

  std::vector<Event> events;
  events.reserve(ids.size());
  std::unordered_map<EventId, Event> kept;
  for (EventId id : ids) {
    if (kept.contains(id)) continue;  // reported by more than one rule
    auto it = event_cache_.find(id);
    if (it == event_cache_.end()) continue;  // fed before capture enabled
    events.push_back(it->second);
    kept.emplace(id, it->second);
  }
  // Matched events no longer back any pending state — drop their copies so
  // the cache is bounded by the pending set, not the stream length.
  event_cache_ = std::move(kept);
  return events;
}

}  // namespace horus
