#include "obs/query_profile.h"

#include <cstdio>

namespace horus::obs {

void QueryProfile::add_parse(double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_.parse_seconds += seconds;
}

void QueryProfile::add_plan(double seconds, std::uint64_t candidates) {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_.plan_seconds += seconds;
  data_.plan_candidates += candidates;
}

void QueryProfile::add_plan_text(std::string text) {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_.plan_text = std::move(text);
}

void QueryProfile::add_prune(double seconds, std::uint64_t admitted,
                             std::uint64_t rejected) {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_.prune_seconds += seconds;
  data_.prune_admitted += admitted;
  data_.prune_rejected += rejected;
}

void QueryProfile::add_traverse(double seconds, std::uint64_t nodes,
                                std::uint64_t edges) {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_.traverse_seconds += seconds;
  data_.nodes_visited += nodes;
  data_.edges_visited += edges;
}

void QueryProfile::add_vc_comparisons(std::uint64_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_.vc_comparisons += n;
}

void QueryProfile::add_clause(ClauseStats stats) {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_.clauses.push_back(std::move(stats));
}

QueryProfile::Snapshot QueryProfile::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

std::string QueryProfile::to_text() const {
  const Snapshot s = snapshot();
  char line[256];
  std::string out = "query profile\n";

  auto stage = [&](const char* name, double seconds, const char* detail) {
    std::snprintf(line, sizeof(line), "  %-9s %10.3f ms  %s\n", name,
                  seconds * 1e3, detail);
    out += line;
  };

  char detail[160];
  stage("parse", s.parse_seconds, "");
  std::snprintf(detail, sizeof(detail), "candidates=%llu",
                static_cast<unsigned long long>(s.plan_candidates));
  stage("plan", s.plan_seconds, detail);
  std::snprintf(detail, sizeof(detail), "admitted=%llu rejected=%llu",
                static_cast<unsigned long long>(s.prune_admitted),
                static_cast<unsigned long long>(s.prune_rejected));
  stage("prune", s.prune_seconds, detail);
  std::snprintf(detail, sizeof(detail), "nodes=%llu edges=%llu",
                static_cast<unsigned long long>(s.nodes_visited),
                static_cast<unsigned long long>(s.edges_visited));
  stage("traverse", s.traverse_seconds, detail);
  if (s.vc_comparisons != 0) {
    std::snprintf(line, sizeof(line), "  vc comparisons: %llu\n",
                  static_cast<unsigned long long>(s.vc_comparisons));
    out += line;
  }

  if (!s.clauses.empty()) {
    out += "  clauses:\n";
    for (const ClauseStats& c : s.clauses) {
      std::snprintf(line, sizeof(line),
                    "    %-28s %10.3f ms  rows %llu -> %llu\n",
                    c.clause.c_str(), c.seconds * 1e3,
                    static_cast<unsigned long long>(c.rows_in),
                    static_cast<unsigned long long>(c.rows_out));
      out += line;
    }
  }
  if (!s.plan_text.empty()) {
    out += "  ";
    for (const char ch : s.plan_text) {
      out += ch;
      if (ch == '\n') out += "  ";
    }
    if (out.size() >= 2 && out.compare(out.size() - 2, 2, "  ") == 0) {
      out.resize(out.size() - 2);
    }
  }
  return out;
}

}  // namespace horus::obs
