// Process-wide metrics registry — the telemetry backbone of Horus itself.
//
// The paper's whole evaluation is telemetry (pipeline throughput, logical-
// time assignment cost, query latency); this module gives the system the
// same visibility into itself at runtime. Three instrument kinds, mirroring
// the Prometheus data model:
//
//   Counter    monotonically increasing count (events processed, retries)
//   Gauge      point-in-time level (pending pairs, queue depth)
//   Histogram  latency/size distribution over exponential buckets
//
// Instruments are grouped into *families* (one metric name + help string),
// and a family fans out into *children* keyed by a label set, e.g.
// horus_pipeline_events_total{stage="intra"}. Child lookup (`with()`) takes
// a mutex and should be done once at component construction; the returned
// reference is stable for the registry's lifetime, and every update on it
// (inc/set/observe) is a lock-free relaxed atomic — safe to call from any
// thread, cheap enough for per-message hot paths.
//
// Exposition: expose_text() renders the Prometheus text format,
// expose_json() a JSON document with the same content (both deterministic:
// families sorted by name, children by label set). This library deliberately
// depends on nothing but the standard library so that even the lowest layer
// (common/thread_pool) can be instrumented without a dependency cycle.
//
// Label cardinality contract (see DESIGN.md §8): label values must come
// from small closed sets (stage names, topic names, level names) — never
// from event payloads, user queries, or unbounded id spaces.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace horus::obs {

/// A label set: key/value pairs. Canonicalized (sorted by key) on child
/// lookup, so {a=1,b=2} and {b=2,a=1} name the same child.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n = 1) noexcept {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if below it (high-water mark tracking).
  void track_max(std::int64_t v) noexcept {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Bucket layout for histograms: `bucket_count` finite buckets with upper
/// bounds first_bound * growth^i, plus an implicit +Inf bucket. The default
/// covers 1 µs .. ~8.4 s in powers of two — the latency range of everything
/// Horus times (VC comparisons through full drains).
struct HistogramOptions {
  double first_bound = 1e-6;
  double growth = 2.0;
  int bucket_count = 24;
};

/// Exponential-bucket histogram. observe() is lock-free: one relaxed
/// fetch_add on the bucket, the count, and a CAS loop on the (double) sum.
/// A value lands in the first bucket whose upper bound is >= the value
/// (Prometheus `le` semantics; bounds are inclusive).
class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options = {});

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept;
  /// Finite upper bounds; bucket i counts observations <= bounds()[i] (and
  /// > bounds()[i-1]). Index bounds().size() is the +Inf bucket.
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t index) const noexcept {
    return buckets_[index].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  // bounds_.size() + 1 slots; the last is the +Inf bucket. Never resized
  // after construction, so concurrent observe()/bucket() need no lock.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  ///< bit-cast double accumulator
};

/// Point-in-time copy of a histogram's bucket counters, taken with
/// snapshot(). Two snapshots bracket a *window*: histogram_quantile() over
/// (histogram, earlier snapshot) estimates a quantile of only the
/// observations that landed in between — how the service overload
/// controller derives a recent p99 from a cumulative histogram.
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;  ///< bounds().size() + 1 slots
  std::uint64_t count = 0;
};

[[nodiscard]] HistogramSnapshot snapshot(const Histogram& histogram);

/// Quantile estimate (Prometheus-style: the upper bound of the bucket where
/// the cumulative window count crosses q * total; the +Inf bucket reports
/// the largest finite bound). `since` restricts the estimate to
/// observations after that snapshot; 0.0 when the window is empty.
[[nodiscard]] double histogram_quantile(const Histogram& histogram, double q,
                                        const HistogramSnapshot& since);

/// Quantile over the histogram's full lifetime.
[[nodiscard]] double histogram_quantile(const Histogram& histogram, double q);

/// Scoped span timer: records the elapsed wall time (seconds) into a
/// histogram when destroyed or stop()ped, whichever comes first.
class Timer {
 public:
  explicit Timer(Histogram& histogram) noexcept
      : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { stop(); }

  /// Records now; returns the elapsed seconds. Idempotent.
  double stop() noexcept {
    if (histogram_ == nullptr) return 0.0;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    histogram_->observe(elapsed);
    histogram_ = nullptr;
    return elapsed;
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

class Registry;

/// One metric name fanning out into children by label set. Obtain from
/// Registry::counters()/gauges()/histograms(); call with() once and keep the
/// reference.
template <typename T>
class Family {
 public:
  /// The child for `labels` (created on first use; canonicalized by key).
  T& with(Labels labels);
  /// The unlabeled child.
  T& with() { return with(Labels{}); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& help() const noexcept { return help_; }

 private:
  friend class Registry;
  Family(std::string name, std::string help, HistogramOptions options)
      : name_(std::move(name)),
        help_(std::move(help)),
        hist_options_(options) {}

  [[nodiscard]] T* make_child() const;

  std::string name_;
  std::string help_;
  HistogramOptions hist_options_;  // used by Family<Histogram> only
  mutable std::mutex mutex_;
  // std::map keeps children sorted by label set -> deterministic exposition.
  std::map<Labels, std::unique_ptr<T>> children_;
};

/// The registry: owns families, exposes them. Instantiable (tests build
/// private registries); production code uses the process-wide global().
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry. Intentionally never destroyed, so instruments
  /// resolved into statics stay valid during late shutdown (service threads
  /// joining after main).
  [[nodiscard]] static Registry& global();

  /// Family accessors: create on first use, return the existing family on
  /// subsequent calls. Registering one name as two different kinds throws
  /// std::logic_error (a programming error, not a runtime condition).
  Family<Counter>& counters(const std::string& name, const std::string& help);
  Family<Gauge>& gauges(const std::string& name, const std::string& help);
  Family<Histogram>& histograms(const std::string& name,
                                const std::string& help,
                                HistogramOptions options = {});

  /// Shorthands for family + with() in one call.
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {}) {
    return counters(name, help).with(std::move(labels));
  }
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {}) {
    return gauges(name, help).with(std::move(labels));
  }
  Histogram& histogram(const std::string& name, const std::string& help,
                       Labels labels = {}, HistogramOptions options = {}) {
    return histograms(name, help, options).with(std::move(labels));
  }

  /// Prometheus text exposition format (families sorted by name).
  [[nodiscard]] std::string expose_text() const;
  /// The same content as one JSON document (text, parseable by any JSON
  /// parser; this library has no JSON dependency by design).
  [[nodiscard]] std::string expose_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Family<Counter>>> counters_;
  std::map<std::string, std::unique_ptr<Family<Gauge>>> gauges_;
  std::map<std::string, std::unique_ptr<Family<Histogram>>> histograms_;

  void check_name_free(const std::string& name, const char* kind) const;
};

}  // namespace horus::obs
