// Per-query stage profile, surfaced by `horus query --profile`.
//
// Where the Registry aggregates across a process lifetime, a QueryProfile
// captures ONE query's cost breakdown in the stages the paper's evaluation
// reasons about:
//
//   parse     query text -> AST
//   plan      candidate selection (index/range scans picking starting rows)
//   prune     vector-clock pruning: candidates admitted vs. rejected
//   traverse  graph walking + result assembly (nodes/edges visited)
//
// plus a per-clause table (rows in/out and time for each MATCH/WHERE/...).
// The engine layers write into it through the add_*() hooks whenever
// QueryOptions::profile is non-null; all hooks are mutex-guarded because
// clause execution can fan out across the thread pool. A null profile costs
// one pointer test — the hot paths stay untouched.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace horus::obs {

class QueryProfile {
 public:
  struct ClauseStats {
    std::string clause;  ///< e.g. "MATCH", "WHERE", "CALL horus.getCausalGraph"
    std::uint64_t rows_in = 0;
    std::uint64_t rows_out = 0;
    double seconds = 0.0;
  };

  struct Snapshot {
    double parse_seconds = 0.0;
    double plan_seconds = 0.0;
    double prune_seconds = 0.0;
    double traverse_seconds = 0.0;
    std::uint64_t plan_candidates = 0;   ///< rows admitted by plan-stage scans
    std::uint64_t prune_admitted = 0;
    std::uint64_t prune_rejected = 0;
    std::uint64_t nodes_visited = 0;
    std::uint64_t edges_visited = 0;
    std::uint64_t vc_comparisons = 0;
    std::vector<ClauseStats> clauses;
    /// EXPLAIN-style rendering of the executed plan (empty when the query
    /// ran through the legacy pipeline).
    std::string plan_text;
  };

  void add_parse(double seconds);
  void add_plan(double seconds, std::uint64_t candidates);
  void add_plan_text(std::string text);
  void add_prune(double seconds, std::uint64_t admitted,
                 std::uint64_t rejected);
  void add_traverse(double seconds, std::uint64_t nodes, std::uint64_t edges);
  void add_vc_comparisons(std::uint64_t n);
  void add_clause(ClauseStats stats);

  [[nodiscard]] Snapshot snapshot() const;

  /// Human-readable breakdown (stage table + clause table).
  [[nodiscard]] std::string to_text() const;

 private:
  mutable std::mutex mutex_;
  Snapshot data_;
};

}  // namespace horus::obs
