#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace horus::obs {

namespace {

// Shortest round-trippable rendering of a double, matching what both the
// Prometheus text format and JSON accept ("0.001", "1e-06", "42").
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shortest precision that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) {
      std::memcpy(buf, shorter, sizeof(shorter));
      break;
    }
  }
  return buf;
}

// Escaping for Prometheus label values: backslash, double quote, newline.
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// Minimal JSON string escaping (this library has no JSON dependency).
std::string escape_json(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// name{k1="v1",k2="v2"} — or just name when unlabeled. `extra` appends one
// more pair (used for histogram `le`).
std::string series_name(const std::string& name, const Labels& labels,
                        const std::string& extra_key = {},
                        const std::string& extra_value = {}) {
  std::string out = name;
  if (labels.empty() && extra_key.empty()) return out;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += escape_label_value(extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

std::string labels_json(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += escape_json(key);
    out += "\":\"";
    out += escape_json(value);
    out += '"';
  }
  out += '}';
  return out;
}

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(const HistogramOptions& options)
    : bounds_(), buckets_(static_cast<std::size_t>(
                             std::max(options.bucket_count, 1)) +
                         1) {
  const int n = std::max(options.bucket_count, 1);
  bounds_.reserve(static_cast<std::size_t>(n));
  double bound = options.first_bound;
  for (int i = 0; i < n; ++i) {
    bounds_.push_back(bound);
    bound *= options.growth;
  }
}

void Histogram::observe(double v) noexcept {
  // First bucket whose (inclusive) upper bound admits v; +Inf otherwise.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Accumulate the double sum through a CAS loop on its bit pattern —
  // atomic<double>::fetch_add is C++20; this stays portable and lock-free.
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double current;
    static_assert(sizeof(current) == sizeof(expected));
    std::memcpy(&current, &expected, sizeof(current));
    const double next = current + v;
    std::uint64_t next_bits;
    std::memcpy(&next_bits, &next, sizeof(next_bits));
    if (sum_bits_.compare_exchange_weak(expected, next_bits,
                                        std::memory_order_relaxed)) {
      return;
    }
  }
}

double Histogram::sum() const noexcept {
  const std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

// ---------------------------------------------------------------------------
// Family

template <>
Counter* Family<Counter>::make_child() const {
  return new Counter();
}

template <>
Gauge* Family<Gauge>::make_child() const {
  return new Gauge();
}

template <>
Histogram* Family<Histogram>::make_child() const {
  return new Histogram(hist_options_);
}

template <typename T>
T& Family<T>::with(Labels labels) {
  Labels key = canonical(std::move(labels));
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<T>& slot = children_[key];
  if (!slot) slot.reset(make_child());
  return *slot;
}

template class Family<Counter>;
template class Family<Gauge>;
template class Family<Histogram>;

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::global() {
  // Leaked on purpose: service threads (ThreadPool, pipeline workers) may
  // touch instruments during static destruction; a destroyed registry there
  // would be use-after-free. One allocation per process is the cheap fix.
  static Registry* registry = new Registry();
  return *registry;
}

void Registry::check_name_free(const std::string& name,
                               const char* kind) const {
  const bool taken = (std::strcmp(kind, "counter") != 0 &&
                      counters_.count(name) != 0) ||
                     (std::strcmp(kind, "gauge") != 0 &&
                      gauges_.count(name) != 0) ||
                     (std::strcmp(kind, "histogram") != 0 &&
                      histograms_.count(name) != 0);
  if (taken) {
    throw std::logic_error("metric '" + name +
                           "' already registered with a different kind");
  }
}

Family<Counter>& Registry::counters(const std::string& name,
                                    const std::string& help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    check_name_free(name, "counter");
    it = counters_
             .emplace(name, std::unique_ptr<Family<Counter>>(new Family<Counter>(
                                name, help, HistogramOptions{})))
             .first;
  }
  return *it->second;
}

Family<Gauge>& Registry::gauges(const std::string& name,
                                const std::string& help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    check_name_free(name, "gauge");
    it = gauges_
             .emplace(name, std::unique_ptr<Family<Gauge>>(new Family<Gauge>(
                                name, help, HistogramOptions{})))
             .first;
  }
  return *it->second;
}

Family<Histogram>& Registry::histograms(const std::string& name,
                                        const std::string& help,
                                        HistogramOptions options) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    check_name_free(name, "histogram");
    it = histograms_
             .emplace(name,
                      std::unique_ptr<Family<Histogram>>(
                          new Family<Histogram>(name, help, options)))
             .first;
  }
  return *it->second;
}

std::string Registry::expose_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;

  for (const auto& [name, family] : counters_) {
    out += "# HELP " + name + " " + family->help() + "\n";
    out += "# TYPE " + name + " counter\n";
    const std::lock_guard<std::mutex> children_lock(family->mutex_);
    for (const auto& [labels, child] : family->children_) {
      out += series_name(name, labels) + " " +
             std::to_string(child->value()) + "\n";
    }
  }

  for (const auto& [name, family] : gauges_) {
    out += "# HELP " + name + " " + family->help() + "\n";
    out += "# TYPE " + name + " gauge\n";
    const std::lock_guard<std::mutex> children_lock(family->mutex_);
    for (const auto& [labels, child] : family->children_) {
      out += series_name(name, labels) + " " +
             std::to_string(child->value()) + "\n";
    }
  }

  for (const auto& [name, family] : histograms_) {
    out += "# HELP " + name + " " + family->help() + "\n";
    out += "# TYPE " + name + " histogram\n";
    const std::lock_guard<std::mutex> children_lock(family->mutex_);
    for (const auto& [labels, child] : family->children_) {
      std::uint64_t cumulative = 0;
      const std::vector<double>& bounds = child->bounds();
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        cumulative += child->bucket(i);
        out += series_name(name + "_bucket", labels, "le",
                           format_double(bounds[i])) +
               " " + std::to_string(cumulative) + "\n";
      }
      cumulative += child->bucket(bounds.size());
      out += series_name(name + "_bucket", labels, "le", "+Inf") + " " +
             std::to_string(cumulative) + "\n";
      out += series_name(name + "_sum", labels) + " " +
             format_double(child->sum()) + "\n";
      out += series_name(name + "_count", labels) + " " +
             std::to_string(child->count()) + "\n";
    }
  }

  return out;
}

std::string Registry::expose_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"metrics\":[";
  bool first_family = true;

  auto open_family = [&](const std::string& name, const std::string& help,
                         const char* type) {
    if (!first_family) out += ',';
    first_family = false;
    out += "{\"name\":\"" + escape_json(name) + "\",\"type\":\"" + type +
           "\",\"help\":\"" + escape_json(help) + "\",\"series\":[";
  };

  for (const auto& [name, family] : counters_) {
    open_family(name, family->help(), "counter");
    const std::lock_guard<std::mutex> children_lock(family->mutex_);
    bool first = true;
    for (const auto& [labels, child] : family->children_) {
      if (!first) out += ',';
      first = false;
      out += "{\"labels\":" + labels_json(labels) +
             ",\"value\":" + std::to_string(child->value()) + "}";
    }
    out += "]}";
  }

  for (const auto& [name, family] : gauges_) {
    open_family(name, family->help(), "gauge");
    const std::lock_guard<std::mutex> children_lock(family->mutex_);
    bool first = true;
    for (const auto& [labels, child] : family->children_) {
      if (!first) out += ',';
      first = false;
      out += "{\"labels\":" + labels_json(labels) +
             ",\"value\":" + std::to_string(child->value()) + "}";
    }
    out += "]}";
  }

  for (const auto& [name, family] : histograms_) {
    open_family(name, family->help(), "histogram");
    const std::lock_guard<std::mutex> children_lock(family->mutex_);
    bool first = true;
    for (const auto& [labels, child] : family->children_) {
      if (!first) out += ',';
      first = false;
      out += "{\"labels\":" + labels_json(labels) +
             ",\"count\":" + std::to_string(child->count()) +
             ",\"sum\":" + format_double(child->sum()) + ",\"buckets\":[";
      std::uint64_t cumulative = 0;
      const std::vector<double>& bounds = child->bounds();
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        cumulative += child->bucket(i);
        if (i != 0) out += ',';
        out += "{\"le\":" + format_double(bounds[i]) +
               ",\"count\":" + std::to_string(cumulative) + "}";
      }
      cumulative += child->bucket(bounds.size());
      out += ",{\"le\":\"+Inf\",\"count\":" + std::to_string(cumulative) +
             "}]}";
    }
    out += "]}";
  }

  out += "]}";
  return out;
}

HistogramSnapshot snapshot(const Histogram& histogram) {
  HistogramSnapshot snap;
  const std::size_t slots = histogram.bounds().size() + 1;
  snap.buckets.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    snap.buckets.push_back(histogram.bucket(i));
  }
  snap.count = histogram.count();
  return snap;
}

double histogram_quantile(const Histogram& histogram, double q,
                          const HistogramSnapshot& since) {
  const std::vector<double>& bounds = histogram.bounds();
  const std::size_t slots = bounds.size() + 1;
  std::uint64_t total = 0;
  std::vector<std::uint64_t> window(slots, 0);
  for (std::size_t i = 0; i < slots; ++i) {
    const std::uint64_t now = histogram.bucket(i);
    const std::uint64_t then =
        i < since.buckets.size() ? since.buckets[i] : 0;
    // Relaxed reads can race an in-flight observe; clamp instead of
    // underflowing.
    window[i] = now >= then ? now - then : 0;
    total += window[i];
  }
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += window[i];
    if (static_cast<double>(cumulative) >= rank) return bounds[i];
  }
  // The quantile falls in the +Inf bucket: report the largest finite bound
  // (the standard Prometheus convention).
  return bounds.empty() ? 0.0 : bounds.back();
}

double histogram_quantile(const Histogram& histogram, double q) {
  return histogram_quantile(histogram, q, HistogramSnapshot{});
}

}  // namespace horus::obs
