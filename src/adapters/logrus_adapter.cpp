#include "adapters/logrus_adapter.h"

#include <array>
#include <cstdio>
#include <ctime>

#include "common/json.h"

namespace horus {

TimeNs parse_rfc3339_ns(const std::string& text) {
  // Accepted: YYYY-MM-DDThh:mm:ss[.frac](Z|±hh:mm)
  int year = 0;
  int month = 0;
  int day = 0;
  int hour = 0;
  int minute = 0;
  int second = 0;
  int consumed = 0;
  if (std::sscanf(text.c_str(), "%4d-%2d-%2dT%2d:%2d:%2d%n", &year, &month,
                  &day, &hour, &minute, &second, &consumed) != 6) {
    throw JsonError("logrus: malformed RFC3339 timestamp '" + text + "'");
  }
  std::size_t pos = static_cast<std::size_t>(consumed);

  std::int64_t frac_ns = 0;
  if (pos < text.size() && text[pos] == '.') {
    ++pos;
    std::int64_t scale = 100'000'000;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      frac_ns += (text[pos] - '0') * scale;
      scale /= 10;
      ++pos;
    }
  }

  std::int64_t offset_seconds = 0;
  if (pos < text.size()) {
    const char c = text[pos];
    if (c == 'Z' || c == 'z') {
      ++pos;
    } else if (c == '+' || c == '-') {
      int oh = 0;
      int om = 0;
      if (std::sscanf(text.c_str() + pos + 1, "%2d:%2d", &oh, &om) != 2) {
        throw JsonError("logrus: malformed timezone in '" + text + "'");
      }
      offset_seconds = (oh * 3600 + om * 60) * (c == '+' ? 1 : -1);
      pos += 6;
    }
  }
  if (pos != text.size()) {
    throw JsonError("logrus: trailing characters in timestamp '" + text + "'");
  }

  std::tm tm{};
  tm.tm_year = year - 1900;
  tm.tm_mon = month - 1;
  tm.tm_mday = day;
  tm.tm_hour = hour;
  tm.tm_min = minute;
  tm.tm_sec = second;
  const std::time_t utc = timegm(&tm);
  if (utc == static_cast<std::time_t>(-1)) {
    throw JsonError("logrus: out-of-range timestamp '" + text + "'");
  }
  return (static_cast<std::int64_t>(utc) - offset_seconds) * 1'000'000'000 +
         frac_ns;
}

void LogrusAdapter::on_log_line(const std::string& json_line) {
  const Json j = Json::parse(json_line);

  Event e;
  e.id = ids_.next();
  e.type = EventType::kLog;

  // Identity fields, per common Logrus deployment conventions.
  e.thread.host = j.get_or("host", j.get_or("hostname", std::string{}));
  if (e.thread.host.empty()) {
    throw JsonError("logrus: line lacks host/hostname field");
  }
  e.thread.pid = static_cast<std::int32_t>(j.get_or("pid", std::int64_t{0}));
  e.thread.tid =
      static_cast<std::int32_t>(j.get_or("goroutine", std::int64_t{1}));
  e.service = j.get_or("service", j.get_or("app", e.thread.host));

  if (j.contains("ts") && j.at("ts").is_int()) {
    e.timestamp = j.at("ts").as_int();
  } else if (j.contains("time") && j.at("time").is_string()) {
    e.timestamp = parse_rfc3339_ns(j.at("time").as_string());
  } else {
    throw JsonError("logrus: line lacks ts/time field");
  }

  e.payload = LogPayload{j.get_or("msg", j.get_or("message", std::string{})),
                         "logrus"};
  ++count_;
  sink_(std::move(e));
}

}  // namespace horus
