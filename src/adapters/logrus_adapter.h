// Adapter for Logrus-style structured logs (the additional logging-library
// adapter the paper lists as planned work).
//
// Logrus (the de-facto structured logger for Go services) emits JSON lines
// of the form
//
//   {"time":"...","level":"info","msg":"...", <custom fields...>}
//
// Go services do not expose pid/tid the way JVM services do, so deployments
// attach process identity as custom fields. This adapter accepts the common
// conventions: `host`/`hostname`, `pid`, `goroutine` (used as the thread
// id), and `service`/`app` for the component name; timestamps are either a
// `ts` integer (nanoseconds) or an RFC3339-ish `time` string.
#pragma once

#include <cstdint>
#include <string>

#include "adapters/event_source.h"

namespace horus {

class LogrusAdapter {
 public:
  LogrusAdapter(std::uint64_t id_range_start, EventSinkFn sink)
      : ids_(id_range_start), sink_(std::move(sink)) {}

  /// Parses one Logrus JSON line and forwards the LOG event.
  /// Throws JsonError on malformed lines or missing identity fields.
  void on_log_line(const std::string& json_line);

  [[nodiscard]] std::uint64_t events_emitted() const noexcept {
    return count_;
  }

 private:
  EventIdAllocator ids_;
  EventSinkFn sink_;
  std::uint64_t count_ = 0;
};

/// Parses an RFC3339 timestamp ("2021-06-01T12:34:56.789Z", offset forms
/// accepted) to nanoseconds since the epoch. Throws JsonError on malformed
/// input.
[[nodiscard]] TimeNs parse_rfc3339_ns(const std::string& text);

}  // namespace horus
