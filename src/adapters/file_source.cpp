#include "adapters/file_source.h"

#include <fstream>

#include "common/diag.h"
#include "common/json.h"

namespace horus {

FileTailSource::FileTailSource(std::uint64_t id_range_start, EventSinkFn sink)
    : log4j_(id_range_start, sink), logrus_(id_range_start + (1ULL << 32),
                                            std::move(sink)) {}

void FileTailSource::add_file(const std::string& path, LogFormat format) {
  TailedFile file;
  file.format = format;
  files_.emplace(path, file);
}

std::size_t FileTailSource::poll() {
  std::size_t shipped_now = 0;
  for (auto& [path, state] : files_) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;  // not created yet

    in.seekg(0, std::ios::end);
    const auto size = static_cast<std::uint64_t>(in.tellg());
    if (size < state.offset) {
      // Truncation/rotation: start over (Filebeat's behaviour on new inode
      // is more elaborate; restart-from-zero is the honest simple policy).
      state.offset = 0;
      state.partial_line.clear();
    }
    if (size == state.offset) continue;

    in.seekg(static_cast<std::streamoff>(state.offset));
    std::string chunk(size - state.offset, '\0');
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    state.offset = size;

    std::string buffer = std::move(state.partial_line);
    buffer += chunk;
    std::size_t start = 0;
    while (true) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) {
        state.partial_line = buffer.substr(start);
        break;
      }
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      try {
        if (state.format == LogFormat::kLog4j) {
          log4j_.on_log_line(line);
        } else {
          logrus_.on_log_line(line);
        }
        ++shipped_;
        ++shipped_now;
      } catch (const JsonError& e) {
        ++parse_errors_;
        diag(DiagLevel::kWarn, "file-source",
             path + ": skipping malformed line: " + e.what());
        if (dead_letter_) dead_letter_(line, e.what());
      }
    }
  }
  return shipped_now;
}

std::string FileTailSource::save_offsets() const {
  Json registry = Json::object();
  for (const auto& [path, state] : files_) {
    registry[path] = static_cast<std::int64_t>(
        state.offset - state.partial_line.size());
  }
  return registry.dump();
}

void FileTailSource::load_offsets(const std::string& registry) {
  const Json j = Json::parse(registry);
  for (auto& [path, state] : files_) {
    if (j.contains(path)) {
      state.offset = static_cast<std::uint64_t>(j.at(path).as_int());
      state.partial_line.clear();
    }
  }
}

}  // namespace horus
