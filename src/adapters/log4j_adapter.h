// Adapter for the Log4j-style JSON appender.
//
// The paper's Log4j adapter is "a simple formatter which outputs log
// messages as JSON objects indicating the timestamp, the name of the
// process/thread, and the textual message". This adapter consumes those
// JSON lines (or in-memory LogRecords) and produces LOG events.
#pragma once

#include <cstdint>
#include <string>

#include "adapters/event_source.h"
#include "tracer/probe_record.h"

namespace horus {

class Log4jAdapter {
 public:
  Log4jAdapter(std::uint64_t id_range_start, EventSinkFn sink)
      : ids_(id_range_start), sink_(std::move(sink)) {}

  /// Parses one appender JSON line and forwards the LOG event.
  /// Throws JsonError on malformed lines.
  void on_log_line(const std::string& json_line);

  /// Direct path bypassing serialization (used when the appender runs
  /// in-process with the adapter).
  void on_record(const sim::LogRecord& record);

  [[nodiscard]] std::uint64_t events_emitted() const noexcept {
    return count_;
  }

 private:
  EventIdAllocator ids_;
  EventSinkFn sink_;
  std::uint64_t count_ = 0;
};

}  // namespace horus
