#include "adapters/log4j_adapter.h"

namespace horus {

void Log4jAdapter::on_log_line(const std::string& json_line) {
  on_record(sim::LogRecord::from_json_line(json_line));
}

void Log4jAdapter::on_record(const sim::LogRecord& record) {
  Event e;
  e.id = ids_.next();
  e.type = EventType::kLog;
  e.thread = record.thread;
  e.service = record.service;
  e.timestamp = record.timestamp;
  e.payload = LogPayload{record.message, record.logger};
  ++count_;
  sink_(std::move(e));
}

}  // namespace horus
