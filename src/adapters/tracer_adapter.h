// Adapter for the kernel-level tracer (the eBPF probe stream).
//
// Normalizes ProbeRecords into Events: assigns globally unique event ids
// from this adapter's id range and maps the container name (attached to each
// probe, as the paper configures for Docker) to the Event's service field.
#pragma once

#include <cstdint>

#include "adapters/event_source.h"
#include "tracer/probe_record.h"

namespace horus {

class TracerAdapter {
 public:
  /// @param id_range_start first EventId this adapter may assign; give each
  ///        adapter a disjoint range (e.g. multiples of 1<<40).
  TracerAdapter(std::uint64_t id_range_start, EventSinkFn sink)
      : ids_(id_range_start), sink_(std::move(sink)) {}

  /// Normalizes and forwards one probe record.
  void on_probe(const sim::ProbeRecord& record);

  [[nodiscard]] std::uint64_t events_emitted() const noexcept {
    return count_;
  }

 private:
  EventIdAllocator ids_;
  EventSinkFn sink_;
  std::uint64_t count_ = 0;
};

}  // namespace horus
