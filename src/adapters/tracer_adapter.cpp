#include "adapters/tracer_adapter.h"

namespace horus {

void TracerAdapter::on_probe(const sim::ProbeRecord& record) {
  Event e;
  e.id = ids_.next();
  e.type = record.type;
  e.thread = record.thread;
  e.service = record.container;
  e.timestamp = record.timestamp;
  if (record.net) {
    e.payload = *record.net;
  } else if (record.child) {
    e.payload = ThreadPayload{*record.child};
  } else if (!record.fsync_path.empty()) {
    e.payload = FsyncPayload{record.fsync_path};
  }
  ++count_;
  sink_(std::move(e));
}

}  // namespace horus
