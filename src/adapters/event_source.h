// Event-source abstraction: adapters normalize heterogeneous raw records
// (kernel probes, logging-library output) into horus::Event and push them to
// an EventSinkFn — in the full pipeline, the sink enqueues into the sources
// topic of the event queue (step 1 of the paper's Figure 2).
//
// The EventSinkFn alias itself lives in event/event.h so that pipeline
// stages can consume it without depending on this module.
#pragma once

#include "event/event.h"
