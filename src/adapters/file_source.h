// File-tailing event source — the Filebeat stand-in.
//
// The paper's deployment places "a Filebeat daemon on each instance to
// continuously send container log messages to Logstash". This source plays
// that role for the offline pipeline: it tails one or more log files
// (JSON-lines in Log4j-appender or Logrus format), remembers its read
// offsets, and ships every new line through the matching adapter into an
// EventSinkFn. poll() can be called repeatedly as the files grow; offsets
// can be persisted so a restarted shipper resumes where it left off
// (at-least-once, like the real thing).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "adapters/log4j_adapter.h"
#include "adapters/logrus_adapter.h"

namespace horus {

enum class LogFormat { kLog4j, kLogrus };

class FileTailSource {
 public:
  /// @param id_range_start base of the EventId range for events shipped by
  ///        this source (shared by its internal adapters).
  FileTailSource(std::uint64_t id_range_start, EventSinkFn sink);

  /// Registers a file to tail. Missing files are tolerated (tailing starts
  /// when they appear).
  void add_file(const std::string& path, LogFormat format);

  /// Reads all new complete lines from every registered file and ships
  /// them. Returns the number of events shipped. Malformed lines are
  /// counted (see parse_errors()) and skipped — one bad line must not stall
  /// the shipper.
  std::size_t poll();

  [[nodiscard]] std::uint64_t events_shipped() const noexcept {
    return shipped_;
  }
  [[nodiscard]] std::uint64_t parse_errors() const noexcept {
    return parse_errors_;
  }

  /// Receives every malformed line together with its parse error.
  using DeadLetterFn =
      std::function<void(const std::string& raw_line, const std::string& error)>;

  /// Routes malformed lines somewhere durable instead of only counting
  /// them — typically Pipeline::dead_letter_sink(), so garbage input lands
  /// on the dead-letter topic for later inspection.
  void set_dead_letter(DeadLetterFn fn) { dead_letter_ = std::move(fn); }

  /// Serializes per-file offsets (a "registry file", in Filebeat terms).
  [[nodiscard]] std::string save_offsets() const;

  /// Restores offsets saved by save_offsets(); files still need add_file().
  void load_offsets(const std::string& registry);

 private:
  struct TailedFile {
    LogFormat format = LogFormat::kLog4j;
    std::uint64_t offset = 0;   ///< bytes consumed
    std::string partial_line;   ///< bytes after the last newline
  };

  Log4jAdapter log4j_;
  LogrusAdapter logrus_;
  std::map<std::string, TailedFile> files_;
  std::uint64_t shipped_ = 0;
  std::uint64_t parse_errors_ = 0;
  DeadLetterFn dead_letter_;
};

}  // namespace horus
