// SimKernel — a deterministic discrete-event "operating system" used as the
// substrate under every simulated distributed application in this repository
// (TrainTicket, the synthetic client/server generator, tests).
//
// It stands in for the real Linux kernels of the paper's testbed: simulated
// programs interact with it through a syscall-like API (connect/accept/
// send/recv, thread create/join, fsync, log) and every such interaction is
// reported through a probe sink — exactly the stream an eBPF tracer would
// capture. Key realism points, because they are what Horus' design reacts
// to:
//
//  - per-host physical clocks with configurable offset and drift: event
//    timestamps are *observed local* times, so cross-host timestamp order
//    can contradict causal order;
//  - TCP-like channels: reliable, ordered byte streams where one send may
//    be consumed by several partial receives (bounded receive buffers),
//    reproducing the SND/RCV count asymmetry of Table I;
//  - thread-per-connection servers: each accepted connection spawns a
//    handler thread, generating the CREATE/START/END/JOIN lifecycle events;
//  - network latency with jitter, so interleavings (and message races like
//    TrainTicket F13) happen exactly as they would across real links.
//
// Programs are written in continuation-passing style: blocking calls take a
// callback invoked when the operation completes. The kernel is
// single-threaded and fully deterministic given a seed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "tracer/probe_record.h"

namespace horus::sim {

class ThreadCtx;

using ThreadFn = std::function<void(ThreadCtx&)>;
using ConnectFn = std::function<void(ThreadCtx&, int fd)>;
using AcceptFn = std::function<void(ThreadCtx&, int fd)>;
using RecvFn = std::function<void(ThreadCtx&, std::string data)>;
using VoidFn = std::function<void(ThreadCtx&)>;

struct HostConfig {
  std::string name;
  std::string ip;
  TimeNs clock_offset_ns = 0;
  double clock_drift_ppm = 0.0;
  /// Upper bound on bytes delivered by a single recv (per-chunk size); small
  /// buffers split large sends into several partial RCV events.
  std::uint64_t recv_buffer_bytes = 1024;
};

struct SimKernelOptions {
  std::uint64_t seed = 42;
  TimeNs link_latency_ns = 300'000;       ///< base one-way latency (0.3 ms)
  TimeNs link_jitter_ns = 100'000;        ///< uniform jitter added per hop
  TimeNs local_op_cost_ns = 2'000;        ///< virtual cost of a local syscall
};

class SimKernel {
 public:
  explicit SimKernel(SimKernelOptions options = {});
  ~SimKernel();

  SimKernel(const SimKernel&) = delete;
  SimKernel& operator=(const SimKernel&) = delete;

  void add_host(HostConfig config);

  /// Receives every kernel-level probe record (the eBPF stream).
  void set_probe_sink(std::function<void(const ProbeRecord&)> sink);

  /// Receives every application log record (the Log4j appender stream).
  void set_log_sink(std::function<void(const LogRecord&)> sink);

  /// Spawns a top-level process (no parent) on `host` running `main`. The
  /// process START fires at current time + `delay`. Returns the main
  /// thread's identity.
  ThreadRef spawn_process(const std::string& host, const std::string& service,
                          ThreadFn main, TimeNs delay = 0);

  /// Runs the event loop until the task queue drains or simulated time
  /// exceeds `until`. Threads still alive at the end (e.g. servers blocked
  /// in accept) do *not* emit END — mirroring a capture window that closes
  /// while the system is still running.
  void run(TimeNs until = std::numeric_limits<TimeNs>::max());

  /// Global true simulated time (ns).
  [[nodiscard]] TimeNs now() const noexcept;

  /// Number of tasks executed so far (determinism/debug aid).
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

 private:
  friend class ThreadCtx;

  struct ThreadState {
    ThreadRef ref;
    std::string service;
    std::string host_ip;
    bool started = false;
    bool ended = false;
    /// Outstanding reasons to stay alive: pending continuations, open
    /// listeners, blocked receives.
    int pending = 0;
    /// Set once the thread's entry function has returned.
    bool entry_done = false;
    std::optional<ThreadRef> parent;       ///< who CREATEd/FORKed us
    std::vector<ThreadRef> join_waiters;   ///< threads blocked in join()
    std::unordered_map<ThreadRef, VoidFn> join_conts;  ///< per-waiter action
  };

  /// One direction of a connection's byte stream.
  struct StreamDir {
    std::uint64_t sent = 0;       ///< next send offset
    std::uint64_t delivered = 0;  ///< bytes that have arrived at the peer
    std::uint64_t consumed = 0;   ///< bytes handed to the application
    std::deque<char> arrived;     ///< delivered but not yet consumed
    /// Earliest time the next delivery may land — enforces TCP's in-order
    /// delivery even when latency jitter would reorder segments.
    TimeNs next_delivery = 0;
  };

  struct Connection {
    ChannelId forward;           ///< client -> server channel
    ThreadRef client_thread;     ///< owner of the client endpoint
    ThreadRef server_thread;     ///< owner of the server endpoint
    StreamDir c2s;
    StreamDir s2c;
    /// Pending recv per endpoint (at most one each; CPS programs issue one
    /// outstanding recv at a time).
    std::optional<RecvFn> client_recv;
    std::optional<RecvFn> server_recv;
  };

  struct Listener {
    ThreadRef thread;     ///< thread blocked in the accept loop
    std::string service;
    AcceptFn on_accept;
  };

  struct Task {
    TimeNs at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct TaskOrder {
    bool operator()(const Task& a, const Task& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // FIFO among equal times
    }
  };

  // -- internals (called by ThreadCtx) --------------------------------------
  void schedule(TimeNs at, std::function<void()> fn);
  TimeNs latency_sample();
  ThreadState& thread_state(const ThreadRef& ref);
  const HostConfig& host_config(const std::string& host) const;
  TimeNs observe(const std::string& host);
  void emit_probe(EventType type, const ThreadRef& thread,
                  const std::string& service,
                  std::optional<NetPayload> net = std::nullopt,
                  std::optional<ThreadRef> child = std::nullopt,
                  std::string fsync_path = {});
  void emit_log(const ThreadRef& thread, const std::string& service,
                std::string level, std::string logger, std::string message);

  ThreadRef allocate_thread(const std::string& host,
                            const std::string& service, bool new_process);
  void start_thread(const ThreadRef& ref, ThreadFn entry,
                    std::optional<ThreadRef> parent, TimeNs at);
  void maybe_end_thread(const ThreadRef& ref);
  void run_on_thread(const ThreadRef& ref, VoidFn fn);

  void do_connect(ThreadCtx& ctx, const std::string& dst_host,
                  std::uint16_t port, ConnectFn cont);
  void do_send(ThreadCtx& ctx, int fd, std::string data);
  void do_recv(ThreadCtx& ctx, int fd, RecvFn cont);
  void deliver_chunks(int fd, bool to_server_side);
  void do_listen(ThreadCtx& ctx, std::uint16_t port, AcceptFn on_accept);
  void do_spawn_thread(ThreadCtx& ctx, ThreadFn fn,
                       std::optional<ThreadRef>* out_child);
  void do_join(ThreadCtx& ctx, const ThreadRef& child, VoidFn cont);
  void do_sleep(ThreadCtx& ctx, TimeNs duration, VoidFn cont);
  void do_fsync(ThreadCtx& ctx, std::string path);

  SimKernelOptions options_;
  Rng rng_;
  ClockDriver clocks_;

  std::unordered_map<std::string, HostConfig> hosts_;          // by name
  std::unordered_map<std::string, std::string> host_by_ip_;    // ip -> name

  std::unordered_map<ThreadRef, ThreadState> threads_;
  std::unordered_map<std::string, std::int32_t> next_pid_;     // per host
  std::unordered_map<std::string, std::int32_t> next_tid_;     // per host/pid key

  std::map<std::pair<std::string, std::uint16_t>, Listener> listeners_;
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;  // by fd
  std::unordered_map<int, bool> fd_is_server_side_;
  int next_fd_ = 3;
  std::uint16_t next_ephemeral_port_ = 30'000;

  std::priority_queue<Task, std::vector<Task>, TaskOrder> queue_;
  std::uint64_t seq_ = 0;
  std::uint64_t steps_ = 0;

  std::function<void(const ProbeRecord&)> probe_sink_;
  std::function<void(const LogRecord&)> log_sink_;
};

/// The syscall surface exposed to simulated programs. A ThreadCtx is only
/// valid for the duration of the callback it is passed to; continuations
/// receive a fresh one.
class ThreadCtx {
 public:
  ThreadCtx(SimKernel& kernel, ThreadRef self, std::string service)
      : kernel_(kernel), self_(std::move(self)), service_(std::move(service)) {}

  [[nodiscard]] const ThreadRef& self() const noexcept { return self_; }
  [[nodiscard]] const std::string& service() const noexcept { return service_; }

  /// Local observed physical time on this thread's host.
  [[nodiscard]] TimeNs local_now();
  /// Global true simulated time (not available to real programs; exposed for
  /// tests only).
  [[nodiscard]] TimeNs true_now() const noexcept { return kernel_.now(); }

  /// Emits an application log message through the logging library.
  void log(std::string message, std::string logger = "app",
           std::string level = "INFO");

  /// Opens a listening socket; `on_accept` runs in a brand-new handler
  /// thread per accepted connection (thread-per-connection server model).
  void listen(std::uint16_t port, AcceptFn on_accept);

  /// Connects to `host`:`port`; `cont` runs on this thread with the new fd
  /// once the connection is established (after one round trip).
  void connect(const std::string& host, std::uint16_t port, ConnectFn cont);

  /// Sends bytes on a connected fd (non-blocking; emits one SND).
  void send(int fd, std::string data);

  /// Receives the next available chunk on fd (at most the host's receive
  /// buffer size); `cont` runs when data arrives. One outstanding recv per
  /// endpoint.
  void recv(int fd, RecvFn cont);

  /// Spawns a sibling thread in this process; returns the child's identity.
  ThreadRef spawn_thread(ThreadFn fn);

  /// Spawns a child *process* (FORK) on the same host.
  ThreadRef fork_process(const std::string& service, ThreadFn fn);

  /// Waits for `child` to end; emits JOIN when it has.
  void join(const ThreadRef& child, VoidFn cont);

  /// Suspends this thread for `duration` of simulated time.
  void sleep(TimeNs duration, VoidFn cont);

  /// Synchronizes a file to stable storage (emits FSYNC).
  void fsync(std::string path);

  /// Deterministic per-kernel randomness for workload think times.
  [[nodiscard]] std::int64_t random(std::int64_t lo, std::int64_t hi);

 private:
  friend class SimKernel;
  SimKernel& kernel_;
  ThreadRef self_;
  std::string service_;
};

}  // namespace horus::sim
