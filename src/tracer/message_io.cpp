#include "tracer/message_io.h"

#include <array>
#include <cstdio>
#include <stdexcept>

namespace horus::sim {

void send_message(ThreadCtx& ctx, int fd, const std::string& message) {
  std::array<char, kFrameHeaderBytes + 1> header{};
  std::snprintf(header.data(), header.size(), "%08zu", message.size());
  std::string framed(header.data(), kFrameHeaderBytes);
  framed += message;
  ctx.send(fd, framed);
}

bool MessageReader::try_extract(std::string& out) {
  if (buffer_.size() < kFrameHeaderBytes) return false;
  std::size_t len = 0;
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    const char c = buffer_[i];
    if (c < '0' || c > '9') {
      throw std::runtime_error("message framing corrupted");
    }
    len = len * 10 + static_cast<std::size_t>(c - '0');
  }
  if (buffer_.size() < kFrameHeaderBytes + len) return false;
  out = buffer_.substr(kFrameHeaderBytes, len);
  buffer_.erase(0, kFrameHeaderBytes + len);
  return true;
}

void MessageReader::read(ThreadCtx& ctx, MessageFn cont) {
  std::string message;
  if (try_extract(message)) {
    cont(ctx, std::move(message));
    return;
  }
  auto self = shared_from_this();
  ctx.recv(fd_, [self, cont = std::move(cont)](ThreadCtx& cctx,
                                               std::string data) mutable {
    self->buffer_ += data;
    self->read(cctx, std::move(cont));
  });
}

}  // namespace horus::sim
