#include "tracer/sim_kernel.h"

#include <algorithm>
#include <stdexcept>

#include "common/json.h"

namespace horus::sim {

// ---------------------------------------------------------------------------
// LogRecord (Log4j-style JSON appender format)
// ---------------------------------------------------------------------------

std::string LogRecord::to_json_line() const {
  Json j = Json::object();
  j["@timestamp"] = timestamp;
  j["level"] = level;
  j["logger"] = logger;
  j["message"] = message;
  j["service"] = service;
  j["host"] = thread.host;
  j["pid"] = static_cast<std::int64_t>(thread.pid);
  j["tid"] = static_cast<std::int64_t>(thread.tid);
  return j.dump();
}

LogRecord LogRecord::from_json_line(const std::string& line) {
  const Json j = Json::parse(line);
  LogRecord r;
  r.timestamp = j.at("@timestamp").as_int();
  r.level = j.get_or("level", std::string{"INFO"});
  r.logger = j.get_or("logger", std::string{});
  r.message = j.get_or("message", std::string{});
  r.service = j.get_or("service", std::string{});
  r.thread.host = j.at("host").as_string();
  r.thread.pid = static_cast<std::int32_t>(j.at("pid").as_int());
  r.thread.tid = static_cast<std::int32_t>(j.at("tid").as_int());
  return r;
}

// ---------------------------------------------------------------------------
// SimKernel
// ---------------------------------------------------------------------------

SimKernel::SimKernel(SimKernelOptions options)
    : options_(options), rng_(options.seed) {}

SimKernel::~SimKernel() = default;

void SimKernel::add_host(HostConfig config) {
  clocks_.add_host(config.name, config.clock_offset_ns,
                   config.clock_drift_ppm);
  host_by_ip_[config.ip] = config.name;
  hosts_[config.name] = std::move(config);
}

void SimKernel::set_probe_sink(std::function<void(const ProbeRecord&)> sink) {
  probe_sink_ = std::move(sink);
}

void SimKernel::set_log_sink(std::function<void(const LogRecord&)> sink) {
  log_sink_ = std::move(sink);
}

TimeNs SimKernel::now() const noexcept { return clocks_.now(); }

void SimKernel::schedule(TimeNs at, std::function<void()> fn) {
  if (at < clocks_.now()) at = clocks_.now();
  queue_.push(Task{at, seq_++, std::move(fn)});
}

TimeNs SimKernel::latency_sample() {
  TimeNs jitter = 0;
  if (options_.link_jitter_ns > 0) {
    jitter = rng_.uniform(0, options_.link_jitter_ns);
  }
  return options_.link_latency_ns + jitter;
}

SimKernel::ThreadState& SimKernel::thread_state(const ThreadRef& ref) {
  auto it = threads_.find(ref);
  if (it == threads_.end()) {
    throw std::logic_error("sim: unknown thread " + ref.to_string());
  }
  return it->second;
}

const HostConfig& SimKernel::host_config(const std::string& host) const {
  auto it = hosts_.find(host);
  if (it == hosts_.end()) {
    throw std::logic_error("sim: unknown host " + host);
  }
  return it->second;
}

TimeNs SimKernel::observe(const std::string& host) {
  return clocks_.observe(host);
}

void SimKernel::emit_probe(EventType type, const ThreadRef& thread,
                           const std::string& service,
                           std::optional<NetPayload> net,
                           std::optional<ThreadRef> child,
                           std::string fsync_path) {
  if (!probe_sink_) return;
  ProbeRecord rec;
  rec.type = type;
  rec.thread = thread;
  rec.timestamp = observe(thread.host);
  rec.container = service;
  rec.net = std::move(net);
  rec.child = std::move(child);
  rec.fsync_path = std::move(fsync_path);
  probe_sink_(rec);
}

void SimKernel::emit_log(const ThreadRef& thread, const std::string& service,
                         std::string level, std::string logger,
                         std::string message) {
  if (!log_sink_) return;
  LogRecord rec;
  rec.thread = thread;
  rec.timestamp = observe(thread.host);
  rec.service = service;
  rec.level = std::move(level);
  rec.logger = std::move(logger);
  rec.message = std::move(message);
  log_sink_(rec);
}

ThreadRef SimKernel::allocate_thread(const std::string& host,
                                     const std::string& service,
                                     bool new_process) {
  (void)service;
  auto& next_pid = next_pid_[host];
  if (next_pid == 0) next_pid = 100;  // os-ish pid numbers
  std::int32_t pid = 0;
  if (new_process) {
    pid = next_pid++;
  } else {
    throw std::logic_error("allocate_thread: sibling threads use the pid of "
                           "their creator; call with explicit ref instead");
  }
  ThreadRef ref{host, pid, 1};
  next_tid_[host + "/" + std::to_string(pid)] = 2;
  return ref;
}

void SimKernel::start_thread(const ThreadRef& ref, ThreadFn entry,
                             std::optional<ThreadRef> parent, TimeNs at) {
  auto& state = threads_[ref];
  state.ref = ref;
  state.parent = parent;
  schedule(at, [this, ref, entry = std::move(entry)]() mutable {
    auto& st = thread_state(ref);
    st.started = true;
    emit_probe(EventType::kStart, ref, st.service);
    ThreadCtx ctx(*this, ref, st.service);
    entry(ctx);
    thread_state(ref).entry_done = true;
    maybe_end_thread(ref);
  });
}

void SimKernel::maybe_end_thread(const ThreadRef& ref) {
  auto& st = thread_state(ref);
  if (st.ended || !st.entry_done || st.pending > 0) return;
  st.ended = true;
  emit_probe(EventType::kEnd, ref, st.service);
  // Wake joiners: each waiter emits JOIN on its own thread.
  for (const ThreadRef& waiter : st.join_waiters) {
    auto cont_it = st.join_conts.find(waiter);
    VoidFn cont = cont_it != st.join_conts.end() ? cont_it->second : VoidFn{};
    schedule(clocks_.now() + options_.local_op_cost_ns,
             [this, waiter, ref, cont = std::move(cont)] {
               auto& ws = thread_state(waiter);
               emit_probe(EventType::kJoin, waiter, ws.service, std::nullopt,
                          ref);
               --ws.pending;
               if (cont) {
                 ThreadCtx ctx(*this, waiter, ws.service);
                 cont(ctx);
               }
               maybe_end_thread(waiter);
             });
  }
  st.join_waiters.clear();
  st.join_conts.clear();
}

void SimKernel::run_on_thread(const ThreadRef& ref, VoidFn fn) {
  auto& st = thread_state(ref);
  ThreadCtx ctx(*this, ref, st.service);
  fn(ctx);
}

ThreadRef SimKernel::spawn_process(const std::string& host,
                                   const std::string& service, ThreadFn main,
                                   TimeNs delay) {
  (void)host_config(host);  // validate
  ThreadRef ref = allocate_thread(host, service, /*new_process=*/true);
  threads_[ref].service = service;
  threads_[ref].host_ip = host_config(host).ip;
  start_thread(ref, std::move(main), std::nullopt, clocks_.now() + delay);
  return ref;
}

void SimKernel::run(TimeNs until) {
  while (!queue_.empty()) {
    // std::priority_queue::top returns const&; the task must be copied or
    // moved out before pop. Move via const_cast is the standard idiom here.
    Task task = std::move(const_cast<Task&>(queue_.top()));
    queue_.pop();
    if (task.at > until) break;
    if (task.at > clocks_.now()) clocks_.advance(task.at - clocks_.now());
    ++steps_;
    task.fn();
  }
}

// ---- syscalls --------------------------------------------------------------

void SimKernel::do_listen(ThreadCtx& ctx, std::uint16_t port,
                          AcceptFn on_accept) {
  auto& st = thread_state(ctx.self());
  const auto key = std::make_pair(st.host_ip, port);
  if (listeners_.contains(key)) {
    throw std::logic_error("sim: port already bound: " + st.host_ip + ":" +
                           std::to_string(port));
  }
  listeners_[key] = Listener{ctx.self(), st.service, std::move(on_accept)};
  ++st.pending;  // a listening socket keeps the server process alive
}

void SimKernel::do_connect(ThreadCtx& ctx, const std::string& dst_host,
                           std::uint16_t port, ConnectFn cont) {
  auto& st = thread_state(ctx.self());
  const HostConfig& dst_cfg = host_config(dst_host);

  SocketAddr src{st.host_ip, next_ephemeral_port_++};
  SocketAddr dst{dst_cfg.ip, port};
  const ChannelId channel{src, dst};

  emit_probe(EventType::kConnect, ctx.self(), st.service,
             NetPayload{channel, 0, 0});

  auto conn = std::make_shared<Connection>();
  conn->forward = channel;
  conn->client_thread = ctx.self();

  const int client_fd = next_fd_++;
  const int server_fd = next_fd_++;
  connections_[client_fd] = conn;
  connections_[server_fd] = conn;
  fd_is_server_side_[client_fd] = false;
  fd_is_server_side_[server_fd] = true;

  ++st.pending;  // connect in flight

  const ThreadRef client = ctx.self();
  const TimeNs syn_arrival = clocks_.now() + latency_sample();

  // SYN arrives at the server: ACCEPT fires on the listening thread, then a
  // handler thread is CREATEd to own the connection.
  schedule(syn_arrival, [this, channel, dst, conn, server_fd] {
    auto lit = listeners_.find(std::make_pair(dst.ip, dst.port));
    if (lit == listeners_.end()) {
      throw std::logic_error("sim: connection refused at " + dst.to_string());
    }
    Listener& listener = lit->second;
    auto& lst = thread_state(listener.thread);
    emit_probe(EventType::kAccept, listener.thread, lst.service,
               NetPayload{channel, 0, 0});

    // Thread-per-connection: the acceptor creates a handler thread.
    ThreadRef handler = listener.thread;
    handler.tid = next_tid_[handler.host + "/" + std::to_string(handler.pid)]++;
    emit_probe(EventType::kCreate, listener.thread, lst.service, std::nullopt,
               handler);
    conn->server_thread = handler;
    auto& hs = threads_[handler];
    hs.service = lst.service;
    hs.host_ip = lst.host_ip;
    AcceptFn on_accept = listener.on_accept;
    start_thread(
        handler,
        [on_accept = std::move(on_accept), server_fd](ThreadCtx& hctx) {
          on_accept(hctx, server_fd);
        },
        listener.thread, clocks_.now() + options_.local_op_cost_ns);
  });

  // SYN-ACK returns to the client one more hop later: connect() completes.
  schedule(syn_arrival + latency_sample(),
           [this, client, client_fd, cont = std::move(cont)] {
             auto& cs = thread_state(client);
             --cs.pending;
             ThreadCtx cctx(*this, client, cs.service);
             cont(cctx, client_fd);
             maybe_end_thread(client);
           });
}

void SimKernel::do_send(ThreadCtx& ctx, int fd, std::string data) {
  auto cit = connections_.find(fd);
  if (cit == connections_.end()) {
    throw std::logic_error("sim: send on bad fd " + std::to_string(fd));
  }
  auto conn = cit->second;
  const bool from_server = fd_is_server_side_.at(fd);
  StreamDir& dir = from_server ? conn->s2c : conn->c2s;
  const ChannelId channel =
      from_server ? conn->forward.reversed() : conn->forward;

  auto& st = thread_state(ctx.self());
  emit_probe(EventType::kSnd, ctx.self(), st.service,
             NetPayload{channel, dir.sent, data.size()});
  dir.sent += data.size();

  const bool to_server_side = !from_server;
  // TCP delivers in order: a later segment can never overtake an earlier
  // one, so clamp to the previous delivery time of this direction.
  const TimeNs arrival =
      std::max(clocks_.now() + latency_sample(), dir.next_delivery);
  dir.next_delivery = arrival;
  schedule(arrival,
           [this, conn, fd, data = std::move(data), to_server_side] {
             StreamDir& d = to_server_side ? conn->c2s : conn->s2c;
             for (char c : data) d.arrived.push_back(c);
             d.delivered += data.size();
             deliver_chunks(fd, to_server_side);
           });
}

void SimKernel::deliver_chunks(int fd, bool to_server_side) {
  auto cit = connections_.find(fd);
  if (cit == connections_.end()) return;
  auto conn = cit->second;
  StreamDir& dir = to_server_side ? conn->c2s : conn->s2c;
  auto& pending_recv = to_server_side ? conn->server_recv : conn->client_recv;
  if (!pending_recv || dir.arrived.empty()) return;

  const ThreadRef consumer =
      to_server_side ? conn->server_thread : conn->client_thread;
  auto& st = thread_state(consumer);
  const HostConfig& cfg = host_config(consumer.host);

  const std::uint64_t chunk =
      std::min<std::uint64_t>(dir.arrived.size(), cfg.recv_buffer_bytes);
  std::string data(dir.arrived.begin(),
                   dir.arrived.begin() + static_cast<std::ptrdiff_t>(chunk));
  dir.arrived.erase(dir.arrived.begin(),
                    dir.arrived.begin() + static_cast<std::ptrdiff_t>(chunk));

  const ChannelId channel =
      to_server_side ? conn->forward : conn->forward.reversed();
  emit_probe(EventType::kRcv, consumer, st.service,
             NetPayload{channel, dir.consumed, chunk});
  dir.consumed += chunk;

  RecvFn cont = std::move(*pending_recv);
  pending_recv.reset();
  --st.pending;
  ThreadCtx cctx(*this, consumer, st.service);
  cont(cctx, std::move(data));
  maybe_end_thread(consumer);
}

void SimKernel::do_recv(ThreadCtx& ctx, int fd, RecvFn cont) {
  (void)ctx;
  auto cit = connections_.find(fd);
  if (cit == connections_.end()) {
    throw std::logic_error("sim: recv on bad fd " + std::to_string(fd));
  }
  auto conn = cit->second;
  const bool server_side = fd_is_server_side_.at(fd);
  auto& pending_recv = server_side ? conn->server_recv : conn->client_recv;
  if (pending_recv) {
    throw std::logic_error("sim: recv already pending on fd " +
                           std::to_string(fd));
  }
  pending_recv = std::move(cont);
  // Delivery (and the matching pending decrement) happens on the endpoint's
  // owner thread — sockets may be shared, so keep the books on the owner.
  const ThreadRef owner =
      server_side ? conn->server_thread : conn->client_thread;
  ++thread_state(owner).pending;

  // If data already arrived, deliver on a fresh task (never re-entrantly).
  schedule(clocks_.now() + options_.local_op_cost_ns,
           [this, fd, server_side] { deliver_chunks(fd, server_side); });
}

void SimKernel::do_join(ThreadCtx& ctx, const ThreadRef& child, VoidFn cont) {
  auto& child_state = thread_state(child);
  auto& self_state = thread_state(ctx.self());
  ++self_state.pending;
  if (child_state.ended) {
    const ThreadRef self = ctx.self();
    const ThreadRef child_copy = child;
    schedule(clocks_.now() + options_.local_op_cost_ns,
             [this, self, child_copy, cont = std::move(cont)] {
               auto& ws = thread_state(self);
               emit_probe(EventType::kJoin, self, ws.service, std::nullopt,
                          child_copy);
               --ws.pending;
               if (cont) {
                 ThreadCtx cctx(*this, self, ws.service);
                 cont(cctx);
               }
               maybe_end_thread(self);
             });
  } else {
    child_state.join_waiters.push_back(ctx.self());
    if (cont) child_state.join_conts[ctx.self()] = std::move(cont);
  }
}

void SimKernel::do_sleep(ThreadCtx& ctx, TimeNs duration, VoidFn cont) {
  const ThreadRef self = ctx.self();
  ++thread_state(self).pending;
  schedule(clocks_.now() + duration, [this, self, cont = std::move(cont)] {
    auto& st = thread_state(self);
    --st.pending;
    if (cont) {
      ThreadCtx cctx(*this, self, st.service);
      cont(cctx);
    }
    maybe_end_thread(self);
  });
}

void SimKernel::do_fsync(ThreadCtx& ctx, std::string path) {
  auto& st = thread_state(ctx.self());
  emit_probe(EventType::kFsync, ctx.self(), st.service, std::nullopt,
             std::nullopt, std::move(path));
}

// ---------------------------------------------------------------------------
// ThreadCtx
// ---------------------------------------------------------------------------

TimeNs ThreadCtx::local_now() { return kernel_.observe(self_.host); }

void ThreadCtx::log(std::string message, std::string logger,
                    std::string level) {
  kernel_.emit_log(self_, service_, std::move(level), std::move(logger),
                   std::move(message));
}

void ThreadCtx::listen(std::uint16_t port, AcceptFn on_accept) {
  kernel_.do_listen(*this, port, std::move(on_accept));
}

void ThreadCtx::connect(const std::string& host, std::uint16_t port,
                        ConnectFn cont) {
  kernel_.do_connect(*this, host, port, std::move(cont));
}

void ThreadCtx::send(int fd, std::string data) {
  kernel_.do_send(*this, fd, std::move(data));
}

void ThreadCtx::recv(int fd, RecvFn cont) {
  kernel_.do_recv(*this, fd, std::move(cont));
}

ThreadRef ThreadCtx::spawn_thread(ThreadFn fn) {
  ThreadRef child = self_;
  child.tid = kernel_.next_tid_[child.host + "/" + std::to_string(child.pid)]++;
  auto& st = kernel_.thread_state(self_);
  kernel_.emit_probe(EventType::kCreate, self_, st.service, std::nullopt,
                     child);
  auto& cs = kernel_.threads_[child];
  cs.service = st.service;
  cs.host_ip = st.host_ip;
  kernel_.start_thread(child, std::move(fn), self_,
                       kernel_.now() + kernel_.options_.local_op_cost_ns);
  return child;
}

ThreadRef ThreadCtx::fork_process(const std::string& service, ThreadFn fn) {
  auto& st = kernel_.thread_state(self_);
  ThreadRef child =
      kernel_.allocate_thread(self_.host, service, /*new_process=*/true);
  kernel_.emit_probe(EventType::kFork, self_, st.service, std::nullopt, child);
  auto& cs = kernel_.threads_[child];
  cs.service = service;
  cs.host_ip = st.host_ip;
  kernel_.start_thread(child, std::move(fn), self_,
                       kernel_.now() + kernel_.options_.local_op_cost_ns);
  return child;
}

void ThreadCtx::join(const ThreadRef& child, VoidFn cont) {
  kernel_.do_join(*this, child, std::move(cont));
}

void ThreadCtx::sleep(TimeNs duration, VoidFn cont) {
  kernel_.do_sleep(*this, duration, std::move(cont));
}

void ThreadCtx::fsync(std::string path) {
  kernel_.do_fsync(*this, std::move(path));
}

std::int64_t ThreadCtx::random(std::int64_t lo, std::int64_t hi) {
  return kernel_.rng_.uniform(lo, hi);
}

}  // namespace horus::sim
