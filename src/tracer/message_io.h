// Length-prefixed message framing on top of SimKernel's byte streams.
//
// The simulated TCP layer delivers byte *chunks* bounded by the receiver's
// buffer size (producing several partial RCV events per send — the asymmetry
// the paper observes in Table I). Applications, however, exchange discrete
// request/response messages. MessageIo provides the framing: every message
// is sent as an 8-digit ASCII length header followed by the body, and a
// MessageReader re-assembles messages from however many chunks the kernel
// delivers them in.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "tracer/sim_kernel.h"

namespace horus::sim {

/// Sends one framed message on `fd` (exactly one SND event).
void send_message(ThreadCtx& ctx, int fd, const std::string& message);

using MessageFn = std::function<void(ThreadCtx&, std::string message)>;

/// Re-assembles framed messages from a stream. One reader per fd endpoint;
/// keep it alive (shared_ptr) across continuations.
class MessageReader : public std::enable_shared_from_this<MessageReader> {
 public:
  [[nodiscard]] static std::shared_ptr<MessageReader> create(int fd) {
    return std::shared_ptr<MessageReader>(new MessageReader(fd));
  }

  /// Delivers the next complete message to `cont`. Invokes `cont`
  /// synchronously when the message is already buffered, otherwise after as
  /// many partial receives as the kernel needs.
  void read(ThreadCtx& ctx, MessageFn cont);

 private:
  explicit MessageReader(int fd) : fd_(fd) {}

  /// Extracts a complete framed message from buffer_ if present.
  [[nodiscard]] bool try_extract(std::string& out);

  int fd_;
  std::string buffer_;
};

inline constexpr std::size_t kFrameHeaderBytes = 8;

}  // namespace horus::sim
