// Raw records produced by the (simulated) kernel-level tracer.
//
// In the paper these records come from eBPF programs attached to syscall
// tracepoints; each record carries the syscall's arguments plus container
// metadata used to identify the service. The tracer adapter
// (src/adapters/tracer_adapter.*) normalizes them into horus::Event.
#pragma once

#include <optional>
#include <string>

#include "common/ids.h"
#include "common/sim_clock.h"
#include "event/event.h"
#include "event/event_type.h"

namespace horus::sim {

struct ProbeRecord {
  EventType type = EventType::kSnd;  ///< never kLog (logs are not syscalls)
  ThreadRef thread;
  TimeNs timestamp = 0;    ///< host-local observed physical time
  std::string container;   ///< docker-style container name = service name

  std::optional<NetPayload> net;     ///< SND/RCV/CONNECT/ACCEPT
  std::optional<ThreadRef> child;    ///< CREATE/FORK/JOIN
  std::string fsync_path;            ///< FSYNC
};

/// Raw record produced by the Log4j-style JSON appender (one per log call).
struct LogRecord {
  ThreadRef thread;
  TimeNs timestamp = 0;
  std::string service;
  std::string level = "INFO";
  std::string logger;
  std::string message;

  /// Serializes in the appender's JSON-line format.
  [[nodiscard]] std::string to_json_line() const;

  /// Parses a JSON line produced by to_json_line().
  [[nodiscard]] static LogRecord from_json_line(const std::string& line);
};

}  // namespace horus::sim
