// Falcon-compatible trace export/import.
//
// The paper's Figure 6 methodology: "we exported the unordered events in the
// format compatible with the Falcon's solver". Falcon consumes a JSON-lines
// event trace (one object per event with type, thread identity, timestamp
// and the syscall attributes); this module writes and reads that format so
// the solver baseline can be driven from files exactly like the original
// toolchain — and so traces captured here can be handed to other tools.
#pragma once

#include <string>
#include <vector>

#include "event/event.h"

namespace horus::baselines {

/// Serializes events as Falcon-style JSON lines.
[[nodiscard]] std::string export_falcon_trace(const std::vector<Event>& events);

/// Writes the trace to a file; throws std::runtime_error on I/O failure.
void write_falcon_trace(const std::vector<Event>& events,
                        const std::string& path);

/// Parses a Falcon-style JSON-lines trace. Throws JsonError on malformed
/// lines.
[[nodiscard]] std::vector<Event> parse_falcon_trace(const std::string& text);

/// Reads a trace file; throws std::runtime_error on I/O failure.
[[nodiscard]] std::vector<Event> read_falcon_trace(const std::string& path);

}  // namespace horus::baselines
