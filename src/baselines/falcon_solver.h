// Falcon-style solver baseline for causal ordering (the comparison system of
// the paper's Section VII-B).
//
// Falcon (DSN'18) produces a causally-coherent trace by encoding the
// happens-before constraints of an execution as an SMT problem — one integer
// variable per event, one `a < b` difference constraint per causal pair —
// and handing it to Z3. The paper shows this approach grows super-linearly
// and becomes unusable beyond a few thousand events, which is the motivation
// for Horus' graph-traversal assignment.
//
// Z3 is not available offline, so this module implements the same
// formulation on a from-scratch general-purpose difference-constraint
// solver. Crucially — and faithfully to the baseline's behaviour — the
// solver has *no topological awareness*: it receives the constraints in
// arrival order (the unordered event export Falcon consumes) and solves by
// iterative bound repair to a fixpoint, exactly like the naive
// theory-propagation loop of a difference-logic solver without a dependency
// graph. Its cost is O(passes x constraints), where the pass count grows
// with the length of causality chains, yielding the super-linear blow-up the
// paper measures for Falcon, while remaining exact (it returns a valid
// linear extension or reports a cycle).
//
// DESIGN.md documents this substitution (Z3 -> in-repo solver).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace horus::baselines {

/// One happens-before constraint: order(before) < order(after).
struct OrderConstraint {
  std::uint32_t before = 0;
  std::uint32_t after = 0;
};

struct SolverResult {
  /// Satisfying assignment: a logical clock per variable (1-based), with
  /// clock[before] < clock[after] for every constraint.
  std::vector<std::int64_t> clocks;
  /// Number of repair passes over the constraint list.
  std::size_t passes = 0;
  /// Total constraint evaluations.
  std::uint64_t evaluations = 0;
  /// False when the constraints are unsatisfiable (a causal cycle).
  bool satisfiable = true;
};

class FalconSolver {
 public:
  /// @param num_variables events in the execution (variables 0..n-1).
  explicit FalconSolver(std::uint32_t num_variables)
      : num_variables_(num_variables) {}

  /// Adds one constraint in arrival order.
  void add_constraint(OrderConstraint constraint) {
    constraints_.push_back(constraint);
  }

  void add_constraints(const std::vector<OrderConstraint>& constraints) {
    constraints_.insert(constraints_.end(), constraints.begin(),
                        constraints.end());
  }

  [[nodiscard]] std::size_t constraint_count() const noexcept {
    return constraints_.size();
  }

  /// Solves for a satisfying assignment.
  ///
  /// @param max_passes safety valve: abort (satisfiable=false, clocks empty)
  ///        after this many repair passes. 0 = no limit. A true cycle is
  ///        detected at `num_variables + 1` passes at the latest.
  [[nodiscard]] SolverResult solve(std::size_t max_passes = 0) const;

 private:
  std::uint32_t num_variables_;
  std::vector<OrderConstraint> constraints_;
};

}  // namespace horus::baselines
