#include "baselines/falcon_solver.h"

namespace horus::baselines {

SolverResult FalconSolver::solve(std::size_t max_passes) const {
  SolverResult result;
  result.clocks.assign(num_variables_, 1);

  // Iterative bound repair: sweep the constraint list (in the order the
  // constraints arrived — no dependency analysis) raising lower bounds until
  // a fixpoint. A violated constraint a < b forces clock[b] := clock[a] + 1,
  // which may invalidate constraints processed earlier in the sweep, so the
  // whole list is swept again — this re-sweeping is where the super-linear
  // cost comes from when chains are long and constraints arrive unordered.
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.passes;
    if (max_passes != 0 && result.passes > max_passes) {
      result.satisfiable = false;
      result.clocks.clear();
      return result;
    }
    // A satisfiable system reaches fixpoint with every clock <= n. A clock
    // exceeding n proves a positive cycle.
    if (result.passes > static_cast<std::size_t>(num_variables_) + 1) {
      result.satisfiable = false;
      result.clocks.clear();
      return result;
    }
    for (const OrderConstraint& c : constraints_) {
      ++result.evaluations;
      if (result.clocks[c.before] >= result.clocks[c.after]) {
        result.clocks[c.after] = result.clocks[c.before] + 1;
        changed = true;
      }
    }
  }
  return result;
}

}  // namespace horus::baselines
