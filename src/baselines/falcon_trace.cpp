#include "baselines/falcon_trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.h"

namespace horus::baselines {

namespace {

/// Falcon's event records use lower-case type names with a "thread" of the
/// form "<tid>@<host>" plus explicit pid, and socket attributes flattened.
std::string falcon_type(EventType type) {
  switch (type) {
    case EventType::kLog: return "LOG";
    case EventType::kSnd: return "SND";
    case EventType::kRcv: return "RCV";
    case EventType::kConnect: return "CONNECT";
    case EventType::kAccept: return "ACCEPT";
    case EventType::kCreate: return "CREATE";
    case EventType::kFork: return "FORK";
    case EventType::kStart: return "START";
    case EventType::kEnd: return "END";
    case EventType::kJoin: return "JOIN";
    case EventType::kFsync: return "FSYNC";
  }
  return "UNKNOWN";
}

}  // namespace

std::string export_falcon_trace(const std::vector<Event>& events) {
  std::string out;
  for (const Event& e : events) {
    Json j = Json::object();
    j["id"] = static_cast<std::int64_t>(value_of(e.id));
    j["type"] = falcon_type(e.type);
    j["thread"] = std::to_string(e.thread.tid) + "@" + e.thread.host;
    j["pid"] = static_cast<std::int64_t>(e.thread.pid);
    j["timestamp"] = e.timestamp;
    j["comm"] = e.service;
    if (const auto* n = e.net()) {
      j["src"] = n->channel.src.ip;
      j["src_port"] = static_cast<std::int64_t>(n->channel.src.port);
      j["dst"] = n->channel.dst.ip;
      j["dst_port"] = static_cast<std::int64_t>(n->channel.dst.port);
      j["offset"] = static_cast<std::int64_t>(n->offset);
      j["size"] = static_cast<std::int64_t>(n->size);
      j["socket"] = n->channel.to_string();
    } else if (const auto* c = e.child()) {
      j["child"] = std::to_string(c->child.tid) + "@" + c->child.host;
      j["child_pid"] = static_cast<std::int64_t>(c->child.pid);
    } else if (const auto* l = e.log()) {
      j["message"] = l->message;
    } else if (const auto* f = e.fsync()) {
      j["path"] = f->path;
    }
    out += j.dump();
    out += '\n';
  }
  return out;
}

void write_falcon_trace(const std::vector<Event>& events,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("falcon trace: cannot open " + path);
  out << export_falcon_trace(events);
}

namespace {

ThreadRef parse_thread(const Json& j, std::string_view thread_key,
                       std::string_view pid_key) {
  const std::string& spec = j.at(thread_key).as_string();
  const auto at = spec.find('@');
  if (at == std::string::npos) {
    throw JsonError("falcon trace: malformed thread '" + spec + "'");
  }
  ThreadRef ref;
  ref.tid = std::stoi(spec.substr(0, at));
  ref.host = spec.substr(at + 1);
  ref.pid = static_cast<std::int32_t>(j.at(pid_key).as_int());
  return ref;
}

}  // namespace

std::vector<Event> parse_falcon_trace(const std::string& text) {
  std::vector<Event> out;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    const Json j = Json::parse(line);
    Event e;
    e.id = static_cast<EventId>(
        static_cast<std::uint64_t>(j.at("id").as_int()));
    const auto type = event_type_from_string(j.at("type").as_string());
    if (!type) {
      throw JsonError("falcon trace: unknown type " +
                      j.at("type").as_string());
    }
    e.type = *type;
    e.thread = parse_thread(j, "thread", "pid");
    e.timestamp = j.at("timestamp").as_int();
    e.service = j.get_or("comm", std::string{});
    if (j.contains("src")) {
      NetPayload n;
      n.channel.src = SocketAddr{
          j.at("src").as_string(),
          static_cast<std::uint16_t>(j.at("src_port").as_int())};
      n.channel.dst = SocketAddr{
          j.at("dst").as_string(),
          static_cast<std::uint16_t>(j.at("dst_port").as_int())};
      n.offset = static_cast<std::uint64_t>(j.get_or("offset", std::int64_t{0}));
      n.size = static_cast<std::uint64_t>(j.get_or("size", std::int64_t{0}));
      e.payload = n;
    } else if (j.contains("child")) {
      e.payload = ThreadPayload{parse_thread(j, "child", "child_pid")};
    } else if (j.contains("message")) {
      e.payload = LogPayload{j.at("message").as_string(), "falcon"};
    } else if (j.contains("path")) {
      e.payload = FsyncPayload{j.at("path").as_string()};
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<Event> read_falcon_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("falcon trace: cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return parse_falcon_trace(text);
}

}  // namespace horus::baselines
