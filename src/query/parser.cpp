#include "query/parser.h"

#include <utility>

namespace horus::query {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : tokens_(tokenize(text)) {}

  Query parse() {
    Query q;
    while (!at_end()) {
      q.clauses.push_back(parse_clause());
    }
    if (q.clauses.empty()) fail("empty query");
    return q;
  }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw QueryError("query parse error at byte " +
                     std::to_string(peek().offset) + ": " + what);
  }

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }

  const Token& next() {
    const Token& t = peek();
    if (t.kind != TokenKind::kEnd) ++pos_;
    return t;
  }

  [[nodiscard]] bool at_end() const {
    return peek().kind == TokenKind::kEnd;
  }

  bool accept(TokenKind kind) {
    if (peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool accept_keyword(std::string_view kw) {
    if (peek().kind == TokenKind::kKeyword && peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool peek_keyword(std::string_view kw,
                                  std::size_t ahead = 0) const {
    return peek(ahead).kind == TokenKind::kKeyword && peek(ahead).text == kw;
  }

  void expect(TokenKind kind, const char* what) {
    if (!accept(kind)) fail(std::string("expected ") + what);
  }

  std::string expect_ident(const char* what) {
    if (peek().kind != TokenKind::kIdent) {
      fail(std::string("expected ") + what);
    }
    return next().text;
  }

  // ---- clauses -------------------------------------------------------------

  Clause parse_clause() {
    if (accept_keyword("MATCH")) return parse_match();
    if (accept_keyword("WHERE")) return parse_where();
    if (accept_keyword("WITH")) return parse_projection(Clause::Kind::kWith);
    if (accept_keyword("RETURN")) {
      return parse_projection(Clause::Kind::kReturn);
    }
    if (accept_keyword("UNWIND")) return parse_unwind();
    if (accept_keyword("CALL")) return parse_call();
    fail("expected a clause (MATCH, WHERE, WITH, UNWIND, CALL, RETURN)");
  }

  Clause parse_match() {
    Clause c;
    c.kind = Clause::Kind::kMatch;
    c.patterns.push_back(parse_path_pattern());
    while (accept(TokenKind::kComma)) {
      c.patterns.push_back(parse_path_pattern());
    }
    return c;
  }

  Clause parse_where() {
    Clause c;
    c.kind = Clause::Kind::kWhere;
    c.predicate = parse_expr();
    // Cypher-style implicit AND across comma/newline-separated predicates is
    // not standard; the paper's Fig. 4a relies on consecutive predicates, so
    // accept AND-chaining only (parse_expr already handles AND/OR).
    return c;
  }

  Clause parse_projection(Clause::Kind kind) {
    Clause c;
    c.kind = kind;
    c.distinct = accept_keyword("DISTINCT");
    c.projections.push_back(parse_projection_item());
    while (accept(TokenKind::kComma)) {
      c.projections.push_back(parse_projection_item());
    }
    if (accept_keyword("ORDER")) {
      if (!accept_keyword("BY")) fail("expected BY after ORDER");
      do {
        SortItem item;
        item.expr = parse_expr();
        if (accept_keyword("DESC")) {
          item.ascending = false;
        } else {
          accept_keyword("ASC");
        }
        c.order_by.push_back(std::move(item));
      } while (accept(TokenKind::kComma));
    }
    if (accept_keyword("LIMIT")) {
      if (peek().kind != TokenKind::kInteger) fail("expected LIMIT count");
      c.limit = next().int_value;
    }
    return c;
  }

  ProjectionItem parse_projection_item() {
    ProjectionItem item;
    const std::size_t start_tok = pos_;
    item.expr = parse_expr();
    if (accept_keyword("AS")) {
      item.alias = expect_ident("alias after AS");
    } else {
      // Default alias: the source token span, concatenated.
      std::string alias;
      for (std::size_t i = start_tok; i < pos_; ++i) {
        switch (tokens_[i].kind) {
          case TokenKind::kIdent:
          case TokenKind::kKeyword: alias += tokens_[i].text; break;
          case TokenKind::kDot: alias += '.'; break;
          case TokenKind::kStar: alias += '*'; break;
          case TokenKind::kLParen: alias += '('; break;
          case TokenKind::kRParen: alias += ')'; break;
          case TokenKind::kString: alias += tokens_[i].text; break;
          case TokenKind::kInteger:
            alias += std::to_string(tokens_[i].int_value);
            break;
          default: break;
        }
      }
      item.alias = std::move(alias);
    }
    return item;
  }

  Clause parse_unwind() {
    Clause c;
    c.kind = Clause::Kind::kUnwind;
    c.unwind_expr = parse_expr();
    if (!accept_keyword("AS")) fail("expected AS in UNWIND");
    c.unwind_alias = expect_ident("UNWIND alias");
    return c;
  }

  Clause parse_call() {
    Clause c;
    c.kind = Clause::Kind::kCall;
    // Dotted procedure name: ident (DOT ident)*
    std::string name = expect_ident("procedure name");
    while (accept(TokenKind::kDot)) {
      name += '.';
      name += expect_ident("procedure name part");
    }
    c.call_procedure = std::move(name);
    expect(TokenKind::kLParen, "'(' after procedure name");
    if (peek().kind != TokenKind::kRParen) {
      c.call_args.push_back(parse_expr());
      while (accept(TokenKind::kComma)) {
        c.call_args.push_back(parse_expr());
      }
    }
    expect(TokenKind::kRParen, "')' after procedure arguments");
    if (accept_keyword("YIELD")) {
      c.yield_names.push_back(expect_ident("YIELD column"));
      while (accept(TokenKind::kComma)) {
        c.yield_names.push_back(expect_ident("YIELD column"));
      }
    }
    return c;
  }

  // ---- patterns ------------------------------------------------------------

  PathPattern parse_path_pattern() {
    PathPattern p;
    p.head = parse_node_pattern();
    while (true) {
      PatternStep step;
      if (accept(TokenKind::kArrowRight)) {
        step.direction = PatternStep::Direction::kRight;
      } else if (accept(TokenKind::kArrowLeft)) {
        step.direction = PatternStep::Direction::kLeft;
      } else if (peek().kind == TokenKind::kDash ||
                 peek().kind == TokenKind::kLt) {
        step = parse_detailed_edge();
      } else {
        break;
      }
      step.node = parse_node_pattern();
      p.steps.push_back(std::move(step));
    }
    return p;
  }

  /// Parses -[:TYPE]->, <-[:TYPE]-, and the variable-length forms
  /// -[*]->, -[:TYPE*]->, -[*2..4]->, -[*..3]->, -[*2..]->.
  PatternStep parse_detailed_edge() {
    PatternStep step;
    bool left = false;
    if (accept(TokenKind::kLt)) {
      left = true;
      if (!accept(TokenKind::kDash)) fail("expected '-' after '<'");
    } else {
      expect(TokenKind::kDash, "'-'");
    }
    if (accept(TokenKind::kLBracket)) {
      if (accept(TokenKind::kColon)) {
        step.edge_type = expect_ident("edge type");
      }
      if (accept(TokenKind::kStar)) {
        step.min_hops = 1;
        step.max_hops = 0;  // unbounded unless a range follows
        if (peek().kind == TokenKind::kInteger) {
          step.min_hops = static_cast<std::uint32_t>(next().int_value);
          step.max_hops = step.min_hops;  // -[*N]-> is exactly N hops
        }
        if (accept(TokenKind::kDotDot)) {
          step.max_hops = 0;
          if (peek().kind == TokenKind::kInteger) {
            step.max_hops = static_cast<std::uint32_t>(next().int_value);
          }
        }
        if (step.max_hops != 0 && step.max_hops < step.min_hops) {
          fail("relationship hop range is empty");
        }
      }
      // Optional variable name before ':' is not supported; anonymous only.
      expect(TokenKind::kRBracket, "']' in relationship");
    }
    expect(TokenKind::kDash, "'-' after relationship detail");
    if (!left) {
      if (!accept(TokenKind::kGt)) fail("expected '>' in relationship");
      step.direction = PatternStep::Direction::kRight;
    } else {
      step.direction = PatternStep::Direction::kLeft;
    }
    return step;
  }

  NodePattern parse_node_pattern() {
    NodePattern node;
    expect(TokenKind::kLParen, "'(' starting node pattern");
    if (peek().kind == TokenKind::kIdent) {
      node.variable = next().text;
    }
    if (accept(TokenKind::kColon)) {
      node.label = expect_ident("node label");
    }
    if (accept(TokenKind::kLBrace)) {
      if (peek().kind != TokenKind::kRBrace) {
        do {
          std::string key = expect_ident("property key");
          expect(TokenKind::kColon, "':' in property map");
          node.properties.emplace_back(std::move(key), parse_expr());
        } while (accept(TokenKind::kComma));
      }
      expect(TokenKind::kRBrace, "'}' closing property map");
    }
    expect(TokenKind::kRParen, "')' closing node pattern");
    return node;
  }

  Value parse_literal() {
    const Token& t = next();
    switch (t.kind) {
      case TokenKind::kInteger: return Value(t.int_value);
      case TokenKind::kFloat: return Value(t.float_value);
      case TokenKind::kString: return Value(t.text);
      case TokenKind::kKeyword:
        if (t.text == "TRUE") return Value(true);
        if (t.text == "FALSE") return Value(false);
        if (t.text == "NULL") return Value();
        break;
      default: break;
    }
    fail("expected literal");
  }

  // ---- expressions -----------------------------------------------------------

  // Expression parsing is recursive descent; nested parens, lists, function
  // arguments, and NOT chains all deepen the C++ call stack. Adversarial
  // input (e.g. 100k '(' bytes) would otherwise overflow it, so nesting is
  // bounded and over-deep queries fail with a QueryError like any other
  // malformed input. Every recursion cycle passes through parse_not(), which
  // is where the guard lives.
  static constexpr std::size_t kMaxExprDepth = 512;

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > kMaxExprDepth) {
        parser.fail("expression nesting too deep");
      }
    }
    ~DepthGuard() { --parser.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& parser;
  };

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->binary_op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (accept_keyword("OR")) {
      lhs = make_binary(BinaryOp::kOr, std::move(lhs), parse_and());
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_not();
    while (accept_keyword("AND")) {
      lhs = make_binary(BinaryOp::kAnd, std::move(lhs), parse_not());
    }
    return lhs;
  }

  ExprPtr parse_not() {
    const DepthGuard guard(*this);
    if (accept_keyword("NOT")) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->unary_op = UnaryOp::kNot;
      e->lhs = parse_not();
      return e;
    }
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    ExprPtr lhs = parse_additive();
    while (true) {
      BinaryOp op;
      if (accept(TokenKind::kEq)) {
        op = BinaryOp::kEq;
      } else if (accept(TokenKind::kNeq)) {
        op = BinaryOp::kNeq;
      } else if (accept(TokenKind::kLt)) {
        op = BinaryOp::kLt;
      } else if (accept(TokenKind::kLe)) {
        op = BinaryOp::kLe;
      } else if (accept(TokenKind::kGt)) {
        op = BinaryOp::kGt;
      } else if (accept(TokenKind::kGe)) {
        op = BinaryOp::kGe;
      } else if (accept_keyword("CONTAINS")) {
        op = BinaryOp::kContains;
      } else if (accept_keyword("IN")) {
        op = BinaryOp::kIn;
      } else if (peek_keyword("STARTS")) {
        ++pos_;
        if (!accept_keyword("WITH")) fail("expected WITH after STARTS");
        op = BinaryOp::kStartsWith;
      } else if (peek_keyword("ENDS")) {
        ++pos_;
        if (!accept_keyword("WITH")) fail("expected WITH after ENDS");
        op = BinaryOp::kEndsWith;
      } else {
        return lhs;
      }
      lhs = make_binary(op, std::move(lhs), parse_additive());
    }
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (true) {
      if (accept(TokenKind::kPlus)) {
        lhs = make_binary(BinaryOp::kAdd, std::move(lhs),
                          parse_multiplicative());
      } else if (accept(TokenKind::kDash)) {
        lhs = make_binary(BinaryOp::kSub, std::move(lhs),
                          parse_multiplicative());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_primary();
    while (true) {
      // `*` only acts as multiplication with an operand on both sides; a
      // bare `*` primary (count(*), RETURN *) never reaches here followed
      // by another primary in valid queries.
      if (peek().kind == TokenKind::kStar &&
          peek(1).kind != TokenKind::kComma &&
          peek(1).kind != TokenKind::kRParen &&
          peek(1).kind != TokenKind::kEnd &&
          peek(1).kind != TokenKind::kKeyword) {
        ++pos_;
        lhs = make_binary(BinaryOp::kMul, std::move(lhs), parse_primary());
      } else if (accept(TokenKind::kSlash)) {
        lhs = make_binary(BinaryOp::kDiv, std::move(lhs), parse_primary());
      } else if (accept(TokenKind::kPercent)) {
        lhs = make_binary(BinaryOp::kMod, std::move(lhs), parse_primary());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_primary() {
    ExprPtr base;
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kInteger:
      case TokenKind::kFloat:
      case TokenKind::kString: {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kLiteral;
        e->literal = parse_literal();
        base = std::move(e);
        break;
      }
      case TokenKind::kKeyword: {
        if (t.text == "TRUE" || t.text == "FALSE" || t.text == "NULL") {
          auto e = std::make_unique<Expr>();
          e->kind = Expr::Kind::kLiteral;
          e->literal = parse_literal();
          base = std::move(e);
          break;
        }
        fail("unexpected keyword '" + t.text + "' in expression");
      }
      case TokenKind::kStar: {
        ++pos_;
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kStar;
        base = std::move(e);
        break;
      }
      case TokenKind::kParam: {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kParameter;
        e->name = next().text;
        base = std::move(e);
        break;
      }
      case TokenKind::kLParen: {
        ++pos_;
        base = parse_expr();
        expect(TokenKind::kRParen, "')'");
        break;
      }
      case TokenKind::kLBracket: {
        ++pos_;
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kList;
        if (peek().kind != TokenKind::kRBracket) {
          e->args.push_back(parse_expr());
          while (accept(TokenKind::kComma)) e->args.push_back(parse_expr());
        }
        expect(TokenKind::kRBracket, "']'");
        base = std::move(e);
        break;
      }
      case TokenKind::kIdent: {
        std::string name = next().text;
        if (peek().kind == TokenKind::kLParen) {
          // function call
          ++pos_;
          auto e = std::make_unique<Expr>();
          e->kind = Expr::Kind::kFunction;
          e->name = std::move(name);
          e->distinct = accept_keyword("DISTINCT");
          if (peek().kind != TokenKind::kRParen) {
            e->args.push_back(parse_expr());
            while (accept(TokenKind::kComma)) {
              e->args.push_back(parse_expr());
            }
          }
          expect(TokenKind::kRParen, "')' after function arguments");
          base = std::move(e);
        } else {
          auto e = std::make_unique<Expr>();
          e->kind = Expr::Kind::kVariable;
          e->name = std::move(name);
          base = std::move(e);
        }
        break;
      }
      default:
        fail("unexpected token in expression");
    }

    // Property access chains: a.b.c
    while (peek().kind == TokenKind::kDot) {
      ++pos_;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kProperty;
      e->name = expect_ident("property name");
      e->lhs = std::move(base);
      base = std::move(e);
    }
    return base;
  }
};

}  // namespace

Query parse_query(std::string_view text) { return Parser(text).parse(); }

}  // namespace horus::query
