#include "query/exec.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "graph/segment.h"

namespace horus::query {

// ---------------------------------------------------------------------------
// ChunkedArena
// ---------------------------------------------------------------------------

void* ChunkedArena::alloc_bytes(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  while (true) {
    if (current_ < chunks_.size()) {
      Chunk& chunk = chunks_[current_];
      const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= chunk.size) {
        offset_ = aligned + bytes;
        return chunk.data.get() + aligned;
      }
      ++current_;
      offset_ = 0;
      continue;
    }
    const std::size_t size = std::max(kChunkBytes, bytes + align);
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
    current_ = chunks_.size() - 1;
    offset_ = 0;
  }
}

namespace {

using internal::Evaluator;
using internal::RowSet;

/// Per-predicate state resolved once per execution, so the per-row cost is
/// an integer compare (interned columns), an in-place typed compare
/// (int64 columns / stored properties), or — only for kGeneric — one
/// expression evaluation over a reused scratch row.
struct CompiledPredicate {
  const PlannedPredicate* pp = nullptr;
  graph::InternedColumnView interned;  // kInternedEq
  std::uint32_t pool_id = graph::InternedColumnView::kAbsent;
  bool pool_present = false;
  graph::Int64ColumnView int64_col;  // kPropCompare numeric fast path
};

[[nodiscard]] std::vector<CompiledPredicate> compile_predicates(
    const graph::GraphStore& store, const Plan& plan) {
  std::vector<CompiledPredicate> out;
  out.reserve(plan.predicates.size());
  for (const PlannedPredicate& pp : plan.predicates) {
    CompiledPredicate c;
    c.pp = &pp;
    if (pp.kind == PlannedPredicate::Kind::kInternedEq) {
      c.interned = store.interned_column(pp.key);
      if (const auto id =
              store.interned_value_id(pp.key, pp.constant.as_string())) {
        c.pool_id = *id;
        c.pool_present = true;
      }
    } else if (pp.kind == PlannedPredicate::Kind::kPropCompare &&
               pp.constant.is_number()) {
      c.int64_col = store.int64_column(pp.key);
    }
    out.push_back(std::move(c));
  }
  return out;
}

/// One predicate against one candidate. `scratch`/`row` form a reusable
/// single-row binding of the head variable for kGeneric conjuncts — the
/// node slot is overwritten in place, no per-row allocation.
[[nodiscard]] bool predicate_matches(const Evaluator& ev,
                                     const CompiledPredicate& c,
                                     graph::NodeId node, RowSet& scratch,
                                     std::vector<Value>& row) {
  const PlannedPredicate& pp = *c.pp;
  switch (pp.kind) {
    case PlannedPredicate::Kind::kInternedEq: {
      const std::uint32_t id =
          c.interned.valid() ? c.interned.id_of(node)
                             : graph::InternedColumnView::kAbsent;
      if (pp.op == BinaryOp::kEq) return c.pool_present && id == c.pool_id;
      // <>: absent compares incomparable to a string (null-ish), so only
      // present-and-different survives — same verdict the legacy
      // compare_values path produces.
      return id != graph::InternedColumnView::kAbsent &&
             (!c.pool_present || id != c.pool_id);
    }
    case PlannedPredicate::Kind::kPropCompare: {
      int cmp;
      if (c.int64_col.valid() && c.int64_col.has(node)) {
        const double x = static_cast<double>(c.int64_col.value_or(node, 0));
        const double y = pp.constant.as_number();
        cmp = x < y ? -1 : (x > y ? 1 : 0);
      } else {
        cmp = internal::compare_property_value(
            ev.graph_.store().property(node, pp.key), pp.constant);
      }
      // pp.op is already normalized to property-on-the-left orientation.
      return internal::compare_verdict(pp.op, cmp).truthy();
    }
    case PlannedPredicate::Kind::kGeneric:
      row[0] = Value(NodeRef{node});
      return ev.eval_expr(*pp.expr, scratch, row).truthy();
  }
  return false;
}

/// Candidate node stream for the plan's scan, in exactly the order the
/// legacy pipeline would emit MATCH rows (ascending node id for the
/// index-backed scans — matching the full scan they replace — and the
/// index's own order where legacy used that same index).
[[nodiscard]] std::vector<graph::NodeId> gather_candidates(
    const Evaluator& ev, const Plan& plan, ExecCounters* counters) {
  const graph::GraphStore& store = ev.graph_.store();
  switch (plan.scan) {
    case ScanKind::kAllNodes:
      return store.all_nodes();
    case ScanKind::kLabel:
      return store.nodes_with_label(plan.label);
    case ScanKind::kIndexEq: {
      // Probe every bucket whose stored type can compare equal to the
      // constant: exact-typed plus the cross-typed numeric bucket (the
      // WHERE compare is numeric, the hash index is typed).
      std::vector<graph::NodeId> found;
      auto probe = [&](const graph::PropertyValue& pv) {
        auto bucket = store.find_nodes(plan.scan_key, pv);
        found.insert(found.end(), bucket.begin(), bucket.end());
      };
      const Value& v = plan.scan_eq;
      if (v.is_bool()) {
        probe(graph::PropertyValue(v.as_bool()));
      } else if (v.is_string()) {
        probe(graph::PropertyValue(v.as_string()));
      } else if (v.is_number()) {
        const double d = v.as_number();
        probe(graph::PropertyValue(d));
        if (std::floor(d) == d &&
            d >= static_cast<double>(std::numeric_limits<std::int64_t>::min()) &&
            d <= static_cast<double>(std::numeric_limits<std::int64_t>::max())) {
          probe(graph::PropertyValue(static_cast<std::int64_t>(d)));
        }
      }
      std::sort(found.begin(), found.end());
      found.erase(std::unique(found.begin(), found.end()), found.end());
      return found;
    }
    case ScanKind::kRange: {
      if (plan.range_lo > plan.range_hi) return {};
      auto found = store.range_scan(plan.scan_key, plan.range_lo, plan.range_hi);
      std::sort(found.begin(), found.end());
      return found;
    }
    case ScanKind::kSegmentSkip: {
      graph::SegmentManager* segments = store.segments();
      if (segments == nullptr) return store.all_nodes();
      std::size_t skipped = 0;
      const auto ranges =
          segments->scan_ranges(plan.scan_key, plan.range_lo, plan.range_hi,
                                &skipped);
      if (counters != nullptr) counters->segments_pruned += skipped;
      std::size_t total = 0;
      for (const auto& [begin, end] : ranges) total += end - begin;
      std::vector<graph::NodeId> found;
      found.reserve(total);
      for (const auto& [begin, end] : ranges) {
        for (graph::NodeId n = begin; n < end; ++n) found.push_back(n);
      }
      return found;
    }
    case ScanKind::kPatternProps: {
      RowSet bootstrap;
      bootstrap.rows.push_back({});
      const auto props = ev.eval_pattern_props(plan.head->head, bootstrap,
                                               bootstrap.rows.front());
      return ev.candidates(plan.head->head, props);
    }
  }
  return {};
}

}  // namespace

RowSet execute_plan(const Evaluator& ev, const Plan& plan, PlanReport* report,
                    ExecCounters* counters) {
  const graph::GraphStore& store = ev.graph_.store();
  QueryGuard* guard = ev.options_.guard;
  const auto t_start = std::chrono::steady_clock::now();

  if (guard != nullptr && guard->stopped()) {
    RowSet rows;  // legacy run(): guard tripped before the first clause
    rows.rows.push_back({});
    return rows;
  }

  // ---- scan -----------------------------------------------------------------

  std::vector<graph::NodeId> candidates =
      gather_candidates(ev, plan, counters);
  const auto t_scan = std::chrono::steady_clock::now();

  // ---- filter ---------------------------------------------------------------

  std::optional<std::uint32_t> label_id;
  if (plan.check_label) label_id = store.label_id(plan.label);
  const std::vector<CompiledPredicate> preds = compile_predicates(store, plan);
  std::vector<std::uint64_t> pred_survivors(preds.size(), 0);

  // LIMIT folds into the filter only when the projection did too (then the
  // plan's rows map 1:1 onto result rows). A negative literal matches the
  // legacy size_t-cast behavior: no truncation.
  std::uint64_t limit = std::numeric_limits<std::uint64_t>::max();
  if (plan.projection != nullptr && plan.limit && *plan.limit >= 0) {
    limit = static_cast<std::uint64_t>(*plan.limit);
  }

  if (guard != nullptr) guard->begin_rows_section();

  std::vector<graph::NodeId> survivors;
  if (!ev.fan_out(candidates.size())) {
    constexpr std::size_t kBatch = 1024;
    ChunkedArena arena;
    graph::NodeId* batch = arena.alloc<graph::NodeId>(kBatch);
    RowSet scratch;
    scratch.columns.push_back(plan.variable);
    std::vector<Value> srow(1);
    bool stop = false;
    for (std::size_t base = 0; base < candidates.size() && !stop;
         base += kBatch) {
      if (guard != nullptr && !guard->keep_going()) break;
      std::size_t n = std::min(kBatch, candidates.size() - base);
      std::memcpy(batch, candidates.data() + base,
                  n * sizeof(graph::NodeId));
      if (plan.check_label) {
        std::size_t m = 0;
        if (label_id) {
          for (std::size_t i = 0; i < n; ++i) {
            if (store.node_label_id(batch[i]) == *label_id) batch[m++] = batch[i];
          }
        }
        n = m;
      }
      // Batch-at-a-time: each predicate compacts the batch in place; the
      // cheapest (most selective) predicates run first, so later ones see
      // shrinking batches.
      for (std::size_t p = 0; p < preds.size() && n > 0; ++p) {
        std::size_t m = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (predicate_matches(ev, preds[p], batch[i], scratch, srow)) {
            batch[m++] = batch[i];
          }
        }
        n = m;
        pred_survivors[p] += m;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (survivors.size() >= limit) {
          stop = true;
          break;
        }
        // Admit before pushing so a tripped max_rows yields exactly the
        // admitted prefix as the partial result.
        if (guard != nullptr && !guard->admit_rows()) {
          stop = true;
          break;
        }
        survivors.push_back(batch[i]);
      }
    }
  } else {
    // Chunk-order-deterministic fan-out, same shape as the legacy WHERE:
    // per-chunk survivor lists concatenate in chunk order, so the row
    // stream is identical to the sequential loop for any thread count.
    const std::size_t n = candidates.size();
    const std::size_t grain = ev.fan_out_grain(n);
    struct ChunkOut {
      std::vector<graph::NodeId> survivors;
      std::vector<std::uint64_t> pred_survivors;
    };
    std::vector<ChunkOut> chunks(ThreadPool::chunk_count(n, grain));
    ev.options_.effective_pool().parallel_for(
        n, grain, ev.options_.effective_threads(),
        [&](ThreadPool::ChunkRange chunk) {
          ChunkOut& local = chunks[chunk.index];
          local.pred_survivors.assign(preds.size(), 0);
          RowSet scratch;
          scratch.columns.push_back(plan.variable);
          std::vector<Value> srow(1);
          for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
            if (guard != nullptr && !guard->keep_going()) return;
            const graph::NodeId node = candidates[i];
            if (plan.check_label &&
                (!label_id || store.node_label_id(node) != *label_id)) {
              continue;
            }
            bool pass = true;
            for (std::size_t p = 0; p < preds.size(); ++p) {
              if (!predicate_matches(ev, preds[p], node, scratch, srow)) {
                pass = false;
                break;
              }
              ++local.pred_survivors[p];
            }
            if (!pass) continue;
            if (guard != nullptr && !guard->admit_rows()) return;
            local.survivors.push_back(node);
          }
        });
    for (const ChunkOut& chunk : chunks) {
      survivors.insert(survivors.end(), chunk.survivors.begin(),
                       chunk.survivors.end());
      for (std::size_t p = 0; p < chunk.pred_survivors.size(); ++p) {
        pred_survivors[p] += chunk.pred_survivors[p];
      }
    }
    if (survivors.size() > limit) {
      survivors.resize(static_cast<std::size_t>(limit));
    }
  }
  const auto t_filter = std::chrono::steady_clock::now();

  // ---- output / projection --------------------------------------------------

  RowSet out;
  if (plan.projection != nullptr) {
    // Survivors were already admitted through the guard one-for-one in the
    // filter stage (plan rows map 1:1 onto result rows here), so the
    // projection only materializes them — re-admitting would double-count
    // and empty out a partial result after a tripped max_rows.
    for (const auto& item : plan.projection->projections) {
      out.columns.push_back(item.alias);
    }
    RowSet scratch;
    scratch.columns.push_back(plan.variable);
    std::vector<Value> srow(1);
    out.rows.reserve(std::min<std::uint64_t>(survivors.size(), limit));
    for (const graph::NodeId node : survivors) {
      if (out.rows.size() >= limit) break;
      srow[0] = Value(NodeRef{node});
      std::vector<Value> projected;
      projected.reserve(plan.projection->projections.size());
      for (const auto& item : plan.projection->projections) {
        projected.push_back(ev.eval_expr(*item.expr, scratch, srow));
      }
      out.rows.push_back(std::move(projected));
    }
  } else if (!survivors.empty()) {
    out.columns.push_back(plan.variable);
    out.rows.reserve(survivors.size());
    for (const graph::NodeId node : survivors) {
      out.rows.push_back({Value(NodeRef{node})});
    }
  }
  // No survivors and no projection: the legacy MATCH never bound the
  // variable, so the hand-off RowSet has no columns either (RETURN * parity).
  const auto t_end = std::chrono::steady_clock::now();

  // ---- instrumentation ------------------------------------------------------

  auto secs = [](auto a, auto b) {
    return std::chrono::duration<double>(b - a).count();
  };
  if (report != nullptr && !report->ops.empty()) {
    std::size_t idx = 0;
    report->ops[idx].actual_rows = static_cast<double>(candidates.size());
    report->ops[idx].seconds = secs(t_start, t_scan);
    ++idx;
    for (std::size_t p = 0; p < preds.size() && idx < report->ops.size();
         ++p, ++idx) {
      report->ops[idx].actual_rows = static_cast<double>(pred_survivors[p]);
      if (p == 0) report->ops[idx].seconds = secs(t_scan, t_filter);
    }
    if (plan.projection != nullptr && idx < report->ops.size()) {
      report->ops[idx].actual_rows = static_cast<double>(out.rows.size());
      report->ops[idx].seconds = secs(t_filter, t_end);
    }
  }
  if (obs::QueryProfile* profile = ev.options_.profile) {
    obs::QueryProfile::ClauseStats scan_stats;
    scan_stats.clause =
        "plan:scan[" + std::string(scan_kind_name(plan.scan)) + "]";
    scan_stats.rows_in = 0;
    scan_stats.rows_out = candidates.size();
    scan_stats.seconds = secs(t_start, t_scan);
    profile->add_clause(std::move(scan_stats));
    if (!preds.empty() || plan.check_label) {
      obs::QueryProfile::ClauseStats filter_stats;
      filter_stats.clause = "plan:filter";
      filter_stats.rows_in = candidates.size();
      filter_stats.rows_out = survivors.size();
      filter_stats.seconds = secs(t_scan, t_filter);
      profile->add_clause(std::move(filter_stats));
    }
    if (plan.projection != nullptr) {
      obs::QueryProfile::ClauseStats project_stats;
      project_stats.clause = "plan:project";
      project_stats.rows_in = survivors.size();
      project_stats.rows_out = out.rows.size();
      project_stats.seconds = secs(t_filter, t_end);
      profile->add_clause(std::move(project_stats));
    }
  }
  return out;
}

}  // namespace horus::query
