// Query evaluator: executes a parsed query as a Cypher-style row pipeline
// over an ExecutionGraph.
//
// Each clause transforms a RowSet (named columns x rows of Values):
//   MATCH   expands rows with all pattern assignments (backtracking over
//           label/property-indexed candidates and adjacency)
//   WHERE   filters rows
//   WITH    projects (with grouping when aggregates are present)
//   UNWIND  explodes a list column
//   CALL    invokes a registered procedure per row, appending YIELD columns
//   RETURN  terminal projection (same machinery as WITH)
//
// Deviations from full Cypher, chosen to keep the engine small while
// supporting the paper's queries: boolean logic is two-valued (null is
// falsy), relationship variables are not bindable, and variable-length
// patterns (`-[*]->`, `-[*1..3]->`) bind one row per *distinct endpoint*
// rather than one row per path (path enumeration is exactly the baseline
// inefficiency the horus.* procedures replace).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/causal_query.h"
#include "core/execution_graph.h"
#include "query/ast.h"
#include "query/lexer.h"
#include "query/planner.h"
#include "query/value.h"

namespace horus::query {

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
  /// True when QueryOptions::guard tripped mid-execution: rows are a
  /// well-formed partial answer, cut short for `truncated_reason`
  /// ("deadline", "max_rows", "max_visited_nodes" or "cancelled").
  bool truncated = false;
  std::string truncated_reason;

  /// Plain-text table rendering for console output.
  [[nodiscard]] std::string to_table() const;
};

/// A procedure takes evaluated arguments and returns rows of its declared
/// yield columns.
struct ProcedureDef {
  std::vector<std::string> yield_columns;
  std::function<std::vector<std::vector<Value>>(const std::vector<Value>&)> fn;
};

/// EXPLAIN output: the plan report (estimates, and actual per-operator row
/// counts when the planned path executed) together with the query result.
struct ExplainResult {
  PlanReport report;
  QueryResult result;

  /// The plan rendered as text; `include_timing` adds per-operator wall
  /// times (timed output is non-deterministic — goldens use the default).
  [[nodiscard]] std::string plan_text(bool include_timing = false) const {
    return report.to_text(include_timing);
  }
};

class QueryEngine {
 public:
  /// @param options parallelism knob: with threads > 1 the row-at-a-time
  ///        clauses (MATCH pattern expansion, WHERE filtering, CALL
  ///        procedure fan-out) dispatch independent sub-queries — fixed
  ///        row chunks — to the thread pool and merge the per-chunk
  ///        results in chunk order, so output ordering is unchanged.
  ///        Registered procedures must be thread-safe when threads > 1
  ///        (the built-in horus.* procedures are).
  explicit QueryEngine(const ExecutionGraph& graph, QueryOptions options = {})
      : graph_(graph), options_(options) {}

  /// Registers (or replaces) a callable procedure, e.g.
  /// "horus.getCausalGraph".
  void register_procedure(std::string name, ProcedureDef def);

  /// Parses and runs a query.
  [[nodiscard]] QueryResult run(std::string_view text,
                                const QueryParams& params = {}) const;

  /// Runs a pre-parsed query.
  [[nodiscard]] QueryResult run(const Query& query,
                                const QueryParams& params = {}) const;

  /// EXPLAIN: plans the query and runs it, returning the chosen plan (with
  /// per-operator estimated vs actual rows) alongside the result. When the
  /// query is unplannable — or options().use_planner is false — the report
  /// carries the fallback reason and the legacy pipeline produces the rows.
  [[nodiscard]] ExplainResult explain(std::string_view text,
                                      const QueryParams& params = {}) const;

  [[nodiscard]] const ExecutionGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const QueryOptions& options() const noexcept {
    return options_;
  }

 private:
  [[nodiscard]] QueryResult run_impl(const Query& query,
                                     const QueryParams& params,
                                     PlanReport* report) const;

  const ExecutionGraph& graph_;
  QueryOptions options_;
  std::map<std::string, ProcedureDef, std::less<>> procedures_;
};

}  // namespace horus::query
