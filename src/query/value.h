// Runtime values of the Horus query language.
//
// A value is either a scalar (null/bool/int/double/string), a reference to a
// graph node, or a list. Node references dereference lazily: property access
// (`n.message`) reads from the graph store at evaluation time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "graph/graph_store.h"

namespace horus::query {

class Value;

/// Named query parameters ($name in the query text). Lives here (not in
/// evaluator.h) so the planner can consume parameters without pulling in
/// the engine.
using QueryParams = std::map<std::string, Value, std::less<>>;

struct NodeRef {
  graph::NodeId id = graph::kNoNode;

  [[nodiscard]] bool operator==(const NodeRef&) const = default;
};

class Value;
using ValueList = std::vector<Value>;

class Value {
 public:
  Value() noexcept : v_(std::monostate{}) {}
  Value(std::nullptr_t) noexcept : v_(std::monostate{}) {}
  Value(bool b) noexcept : v_(b) {}
  Value(std::int64_t i) noexcept : v_(i) {}
  Value(int i) noexcept : v_(static_cast<std::int64_t>(i)) {}
  Value(double d) noexcept : v_(d) {}
  Value(std::string s) noexcept : v_(std::move(s)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(NodeRef n) noexcept : v_(n) {}
  Value(ValueList l) noexcept : v_(std::move(l)) {}

  /// From a stored graph property.
  static Value from_property(const graph::PropertyValue& p) {
    if (const auto* b = std::get_if<bool>(&p)) return Value(*b);
    if (const auto* i = std::get_if<std::int64_t>(&p)) return Value(*i);
    if (const auto* d = std::get_if<double>(&p)) return Value(*d);
    if (const auto* s = std::get_if<std::string>(&p)) return Value(*s);
    return Value();
  }

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::monostate>(v_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_int() const noexcept {
    return std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool is_double() const noexcept {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return is_int() || is_double();
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_node() const noexcept {
    return std::holds_alternative<NodeRef>(v_);
  }
  [[nodiscard]] bool is_list() const noexcept {
    return std::holds_alternative<ValueList>(v_);
  }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] std::int64_t as_int() const {
    return std::get<std::int64_t>(v_);
  }
  [[nodiscard]] double as_number() const {
    if (const auto* i = std::get_if<std::int64_t>(&v_)) {
      return static_cast<double>(*i);
    }
    return std::get<double>(v_);
  }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }
  [[nodiscard]] NodeRef as_node() const { return std::get<NodeRef>(v_); }
  [[nodiscard]] const ValueList& as_list() const {
    return std::get<ValueList>(v_);
  }

  /// Truthiness for WHERE: null/false are false, everything else true.
  [[nodiscard]] bool truthy() const noexcept {
    if (is_null()) return false;
    if (const auto* b = std::get_if<bool>(&v_)) return *b;
    return true;
  }

  [[nodiscard]] bool operator==(const Value& other) const = default;

  [[nodiscard]] std::string to_display_string() const;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string,
               NodeRef, ValueList>
      v_;
};

/// Three-way comparison used by ORDER BY and comparison operators.
/// Returns -1/0/1, or -2 for incomparable operands.
[[nodiscard]] int compare_values(const Value& a, const Value& b);

}  // namespace horus::query
