#include "query/lexer.h"

#include <array>
#include <cctype>
#include <charconv>

#include "common/string_util.h"

namespace horus::query {

namespace {
constexpr std::array kKeywords = {
    "MATCH",  "WHERE",    "WITH",  "RETURN", "ORDER",  "BY",
    "ASC",    "DESC",     "AS",    "AND",    "OR",     "NOT",
    "CONTAINS", "STARTS", "ENDS",  "UNWIND", "CALL",   "YIELD",
    "TRUE",   "FALSE",    "NULL",  "DISTINCT", "LIMIT", "IN",
};
}  // namespace

bool is_keyword(std::string_view upper) {
  for (const char* k : kKeywords) {
    if (upper == k) return true;
  }
  return false;
}

std::vector<Token> tokenize(std::string_view text) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = text.size();

  auto fail = [&](const std::string& what) -> void {
    throw QueryError("query lex error at byte " + std::to_string(i) + ": " +
                     what);
  };

  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: // to end of line.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }

    Token tok;
    tok.offset = i;

    // Parameters: $name.
    if (c == '$') {
      ++i;
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_')) {
        ++i;
      }
      if (i == start) fail("expected parameter name after '$'");
      tok.kind = TokenKind::kParam;
      tok.text = std::string(text.substr(start, i - start));
      out.push_back(std::move(tok));
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_')) {
        ++i;
      }
      std::string word(text.substr(start, i - start));
      std::string upper = word;
      for (char& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      if (is_keyword(upper)) {
        tok.kind = TokenKind::kKeyword;
        tok.text = upper;
      } else {
        tok.kind = TokenKind::kIdent;
        tok.text = std::move(word);
      }
      out.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      // "1..3" is integer, dot-dot, integer — not a float.
      if (i + 1 < n && text[i] == '.' && text[i + 1] == '.') {
        // fall through as integer; '..' is lexed on the next iteration
      } else if (i < n && text[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      }
      const std::string_view num = text.substr(start, i - start);
      if (is_float) {
        tok.kind = TokenKind::kFloat;
        std::from_chars(num.begin(), num.end(), tok.float_value);
      } else {
        tok.kind = TokenKind::kInteger;
        std::from_chars(num.begin(), num.end(), tok.int_value);
      }
      out.push_back(std::move(tok));
      continue;
    }

    if (c == '\'' || c == '"') {
      const char quote = c;
      ++i;
      std::string s;
      while (true) {
        if (i >= n) fail("unterminated string literal");
        const char q = text[i];
        if (q == quote) {
          ++i;
          break;
        }
        if (q == '\\' && i + 1 < n) {
          const char esc = text[i + 1];
          switch (esc) {
            case 'n': s += '\n'; break;
            case 't': s += '\t'; break;
            case '\\': s += '\\'; break;
            case '\'': s += '\''; break;
            case '"': s += '"'; break;
            default: s += esc;
          }
          i += 2;
          continue;
        }
        s += q;
        ++i;
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(s);
      out.push_back(std::move(tok));
      continue;
    }

    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && text[i + 1] == b;
    };

    if (two('-', '-') && i + 2 < n && text[i + 2] == '>') {
      tok.kind = TokenKind::kArrowRight;
      i += 3;
    } else if (two('<', '-') && i + 2 < n && text[i + 2] == '-') {
      tok.kind = TokenKind::kArrowLeft;
      i += 3;
    } else if (two('<', '>')) {
      tok.kind = TokenKind::kNeq;
      i += 2;
    } else if (two('<', '=')) {
      tok.kind = TokenKind::kLe;
      i += 2;
    } else if (two('>', '=')) {
      tok.kind = TokenKind::kGe;
      i += 2;
    } else if (two('.', '.')) {
      tok.kind = TokenKind::kDotDot;
      i += 2;
    } else {
      switch (c) {
        case '(': tok.kind = TokenKind::kLParen; break;
        case ')': tok.kind = TokenKind::kRParen; break;
        case '{': tok.kind = TokenKind::kLBrace; break;
        case '}': tok.kind = TokenKind::kRBrace; break;
        case '[': tok.kind = TokenKind::kLBracket; break;
        case ']': tok.kind = TokenKind::kRBracket; break;
        case ',': tok.kind = TokenKind::kComma; break;
        case ':': tok.kind = TokenKind::kColon; break;
        case '.': tok.kind = TokenKind::kDot; break;
        case '*': tok.kind = TokenKind::kStar; break;
        case '/': tok.kind = TokenKind::kSlash; break;
        case '%': tok.kind = TokenKind::kPercent; break;
        case '=': tok.kind = TokenKind::kEq; break;
        case '<': tok.kind = TokenKind::kLt; break;
        case '>': tok.kind = TokenKind::kGt; break;
        case '+': tok.kind = TokenKind::kPlus; break;
        case '-': tok.kind = TokenKind::kDash; break;
        default:
          fail(std::string("unexpected character '") + c + "'");
      }
      ++i;
    }
    out.push_back(std::move(tok));
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace horus::query
