// Internal row/expression machinery shared by the tuple-at-a-time evaluator
// (evaluator.cpp) and the planned batch executor (exec.cpp). Not part of the
// public query API — include only from src/query translation units.
//
// The Evaluator here is the legacy clause pipeline, unchanged in semantics:
// the planner's differential oracle suite (tests/plan_differential_test.cpp)
// holds the batch executor to row-for-row equality against it. The one
// shared hot-path improvement lives in eval_binary(): comparisons whose
// operands are property accesses no longer materialize a temporary Value
// per row — stored properties are compared in place, and interned columns
// compare pooled u32 ids with no string access at all (see
// try_compare_fast). Both engines rely on it.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "graph/segment.h"
#include "query/evaluator.h"
#include "query/parser.h"

namespace horus::query::internal {

// ---------------------------------------------------------------------------
// Row machinery
// ---------------------------------------------------------------------------

struct RowSet {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  [[nodiscard]] int column_index(std::string_view name) const {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
};

[[nodiscard]] inline bool is_aggregate_function(std::string_view name) {
  const std::string lower = to_lower(name);
  return lower == "count" || lower == "collect" || lower == "min" ||
         lower == "max" || lower == "sum" || lower == "avg";
}

[[nodiscard]] inline bool contains_aggregate(const Expr& e) {
  if (e.kind == Expr::Kind::kFunction && is_aggregate_function(e.name)) {
    return true;
  }
  if (e.lhs && contains_aggregate(*e.lhs)) return true;
  if (e.rhs && contains_aggregate(*e.rhs)) return true;
  for (const auto& a : e.args) {
    if (a && contains_aggregate(*a)) return true;
  }
  return false;
}

/// compare_values semantics against a stored property, without copying the
/// property into a temporary Value (strings are compared in place).
[[nodiscard]] inline int compare_property_value(const graph::PropertyValue& p,
                                                const Value& b) {
  if (const auto* i = std::get_if<std::int64_t>(&p)) {
    if (!b.is_number()) return -2;
    const double x = static_cast<double>(*i);
    const double y = b.as_number();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (const auto* d = std::get_if<double>(&p)) {
    if (!b.is_number()) return -2;
    const double y = b.as_number();
    return *d < y ? -1 : (*d > y ? 1 : 0);
  }
  if (const auto* s = std::get_if<std::string>(&p)) {
    if (!b.is_string()) return -2;
    const int c = s->compare(b.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (const auto* bo = std::get_if<bool>(&p)) {
    if (!b.is_bool()) return -2;
    return static_cast<int>(*bo) - static_cast<int>(b.as_bool());
  }
  return b.is_null() ? 0 : -2;  // stored null (absent property)
}

[[nodiscard]] inline bool is_comparison_op(BinaryOp op) noexcept {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNeq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

/// Maps a three-way comparison (-1/0/1, -2 incomparable) onto a comparison
/// operator's boolean result — the single definition both engines share.
[[nodiscard]] inline Value compare_verdict(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEq: return Value(c == 0);
    case BinaryOp::kNeq: return Value(c != 0 && c != -2);
    case BinaryOp::kLt: return Value(c == -1);
    case BinaryOp::kLe: return Value(c == -1 || c == 0);
    case BinaryOp::kGt: return Value(c == 1);
    case BinaryOp::kGe: return Value(c == 1 || c == 0);
    default: return Value();
  }
}

// ---------------------------------------------------------------------------
// Expression evaluation + legacy clause pipeline
// ---------------------------------------------------------------------------

class Evaluator {
 public:
  Evaluator(const ExecutionGraph& graph,
            const std::map<std::string, ProcedureDef, std::less<>>& procedures,
            const QueryParams& params, const QueryOptions& options)
      : graph_(graph),
        procedures_(procedures),
        params_(params),
        options_(options) {}

  [[nodiscard]] RowSet run(const Query& query) const {
    RowSet rows;
    rows.rows.push_back({});  // one empty row bootstraps the pipeline
    return run_from(query, 0, std::move(rows));
  }

  /// Runs the clause pipeline starting at clause `first` over an existing
  /// RowSet — the planned executor's hand-off point: the plan covers
  /// [0, first), the legacy pipeline finishes [first, end).
  [[nodiscard]] RowSet run_from(const Query& query, std::size_t first,
                                RowSet rows) const {
    QueryGuard* guard = options_.guard;
    for (std::size_t ci = first; ci < query.clauses.size(); ++ci) {
      const Clause& clause = query.clauses[ci];
      // Tripped guard: stop the pipeline at a clause boundary and hand the
      // rows accumulated so far back as the partial result.
      if (guard != nullptr) {
        if (guard->stopped()) break;
        // max_rows bounds each clause's materialized working set, not the
        // sum of all intermediate sets.
        guard->begin_rows_section();
      }
      const std::uint64_t rows_in = rows.rows.size();
      const auto clause_start = std::chrono::steady_clock::now();
      switch (clause.kind) {
        case Clause::Kind::kMatch: rows = eval_match(clause, rows); break;
        case Clause::Kind::kWhere: rows = eval_where(clause, rows); break;
        case Clause::Kind::kWith:
        case Clause::Kind::kReturn:
          rows = eval_projection(clause, rows);
          break;
        case Clause::Kind::kUnwind: rows = eval_unwind(clause, rows); break;
        case Clause::Kind::kCall: rows = eval_call(clause, rows); break;
      }
      if (options_.profile != nullptr) {
        obs::QueryProfile::ClauseStats stats;
        stats.clause = clause_display_name(clause);
        stats.rows_in = rows_in;
        stats.rows_out = rows.rows.size();
        stats.seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - clause_start)
                            .count();
        options_.profile->add_clause(std::move(stats));
      }
    }
    return rows;
  }

  [[nodiscard]] static std::string clause_display_name(const Clause& clause) {
    switch (clause.kind) {
      case Clause::Kind::kMatch: return "MATCH";
      case Clause::Kind::kWhere: return "WHERE";
      case Clause::Kind::kWith: return "WITH";
      case Clause::Kind::kReturn: return "RETURN";
      case Clause::Kind::kUnwind: return "UNWIND";
      case Clause::Kind::kCall: return "CALL " + clause.call_procedure;
    }
    return "?";
  }

  const ExecutionGraph& graph_;
  const std::map<std::string, ProcedureDef, std::less<>>& procedures_;
  const QueryParams& params_;
  const QueryOptions& options_;
  /// Property names resolved to store key ids once per statement (the
  /// Evaluator lives for one statement); rows after the first pay a pointer
  /// hash instead of a string hash per access. Guarded by a mutex because
  /// parallel clause fan-out evaluates expressions from several threads.
  mutable std::unordered_map<const Expr*, graph::PropKeyId> prop_key_cache_;
  /// Interned-column views resolved once per property expression, so the
  /// comparison fast path pays a pointer hash (not a store lock) per row.
  mutable std::unordered_map<const Expr*, graph::InternedColumnView>
      interned_view_cache_;
  mutable std::mutex prop_key_mutex_;

  [[noreturn]] static void fail(const std::string& what) {
    throw QueryError("query evaluation error: " + what);
  }

  [[nodiscard]] graph::PropKeyId resolve_prop_key(const Expr& e) const {
    const std::lock_guard lock(prop_key_mutex_);
    auto [it, inserted] = prop_key_cache_.try_emplace(&e, graph::kNoPropKey);
    if (inserted) it->second = graph_.store().prop_key_id(e.name);
    return it->second;
  }

  /// Cached interned-column view for a property expression (invalid view
  /// when the key is not an interned column). Same quiesced-read contract
  /// as the typed property() reference the generic path uses.
  [[nodiscard]] graph::InternedColumnView interned_view(const Expr& e) const {
    const graph::PropKeyId key = resolve_prop_key(e);
    const std::lock_guard lock(prop_key_mutex_);
    auto it = interned_view_cache_.find(&e);
    if (it != interned_view_cache_.end()) return it->second;
    graph::InternedColumnView view;
    if (key != graph::kNoPropKey) view = graph_.store().interned_column(key);
    interned_view_cache_.emplace(&e, view);
    return view;
  }

  /// True when clause fan-out over `rows` input rows should use the pool.
  [[nodiscard]] bool fan_out(std::size_t rows) const {
    return options_.effective_threads() > 1 && rows >= 2 &&
           rows >= options_.min_parallel_items;
  }

  /// Row chunk size for clause fan-out: small enough to balance, large
  /// enough to amortize dispatch. Chunk boundaries (not scheduling) are what
  /// result ordering depends on, and they are fixed by this value.
  [[nodiscard]] std::size_t fan_out_grain(std::size_t rows) const {
    const std::size_t target =
        static_cast<std::size_t>(options_.effective_threads()) * 8;
    return std::max<std::size_t>(1, rows / std::max<std::size_t>(target, 1));
  }

  // ---- expressions ----------------------------------------------------------

  [[nodiscard]] Value eval_expr(const Expr& e, const RowSet& rows,
                                const std::vector<Value>& row) const {
    switch (e.kind) {
      case Expr::Kind::kLiteral: return e.literal;
      case Expr::Kind::kVariable: {
        const int idx = rows.column_index(e.name);
        if (idx < 0) fail("unbound variable '" + e.name + "'");
        return row[static_cast<std::size_t>(idx)];
      }
      case Expr::Kind::kProperty: {
        const Value base = eval_expr(*e.lhs, rows, row);
        if (base.is_null()) return Value();
        if (!base.is_node()) fail("property access on non-node value");
        // Typed lookup returns a reference into the store — no intermediate
        // PropertyValue copy per row.
        return Value::from_property(
            graph_.store().property(base.as_node().id, resolve_prop_key(e)));
      }
      case Expr::Kind::kBinary: return eval_binary(e, rows, row);
      case Expr::Kind::kUnary: {
        const Value v = eval_expr(*e.lhs, rows, row);
        if (e.unary_op == UnaryOp::kNot) return Value(!v.truthy());
        if (!v.is_number()) fail("negation of non-number");
        if (v.is_int()) return Value(-v.as_int());
        return Value(-v.as_number());
      }
      case Expr::Kind::kFunction: return eval_scalar_function(e, rows, row);
      case Expr::Kind::kList: {
        ValueList list;
        list.reserve(e.args.size());
        for (const auto& a : e.args) {
          list.push_back(eval_expr(*a, rows, row));
        }
        return Value(std::move(list));
      }
      case Expr::Kind::kStar:
        fail("'*' is only valid inside count(*) or as RETURN *");
      case Expr::Kind::kParameter: {
        auto it = params_.find(e.name);
        if (it == params_.end()) {
          fail("missing query parameter '$" + e.name + "'");
        }
        return it->second;
      }
    }
    return Value();
  }

  /// The property expression `var.key` when `x` has exactly that shape
  /// (a property access whose object is a plain variable), else nullptr.
  [[nodiscard]] static const Expr* prop_on_variable(const Expr& x) noexcept {
    if (x.kind != Expr::Kind::kProperty || !x.lhs ||
        x.lhs->kind != Expr::Kind::kVariable) {
      return nullptr;
    }
    return &x;
  }

  /// Row-independent operand: a literal, or a bound parameter. Returns a
  /// pointer into the AST/params (no copy), or nullptr.
  [[nodiscard]] const Value* constant_operand(const Expr& x) const {
    if (x.kind == Expr::Kind::kLiteral) return &x.literal;
    if (x.kind == Expr::Kind::kParameter) {
      auto it = params_.find(x.name);
      if (it != params_.end()) return &it->second;
    }
    return nullptr;
  }

  /// Comparison fast path: `var.key <op> constant` (either side) compares
  /// the stored property in place — no temporary Value, no string copy per
  /// row — and `a.key <op> b.key` over one interned column compares pooled
  /// u32 ids. Returns false (c untouched) when the shape doesn't apply or a
  /// corner case needs the generic path; never changes semantics.
  [[nodiscard]] bool try_compare_fast(const Expr& e, const RowSet& rows,
                                      const std::vector<Value>& row,
                                      int& c) const {
    const Expr* lp = prop_on_variable(*e.lhs);
    const Expr* rp = prop_on_variable(*e.rhs);
    if (lp != nullptr) {
      const int idx = rows.column_index(lp->lhs->name);
      if (idx < 0) return false;  // unbound: generic path reports the error
      const Value& base = row[static_cast<std::size_t>(idx)];
      if (!base.is_node()) return false;
      const graph::NodeId node = base.as_node().id;
      if (rp != nullptr) {
        // Both sides are property accesses. When both hit the same interned
        // column, distinct pool ids mean distinct strings: eq/neq never
        // touch the pool, ordering compares the pooled strings in place.
        const int ridx = rows.column_index(rp->lhs->name);
        if (ridx < 0) return false;
        const Value& rbase = row[static_cast<std::size_t>(ridx)];
        if (!rbase.is_node()) return false;
        if (resolve_prop_key(*lp) != resolve_prop_key(*rp)) return false;
        const graph::InternedColumnView col = interned_view(*lp);
        if (!col.valid()) return false;
        const std::uint32_t a = col.id_of(node);
        const std::uint32_t b = col.id_of(rbase.as_node().id);
        if (a == b) {  // same string — or both absent (null == null)
          c = 0;
          return true;
        }
        if (a == graph::InternedColumnView::kAbsent ||
            b == graph::InternedColumnView::kAbsent) {
          c = -2;
          return true;
        }
        if (e.binary_op == BinaryOp::kEq || e.binary_op == BinaryOp::kNeq) {
          c = 1;  // distinct ids: "differs" is all eq/neq need
          return true;
        }
        c = col.name(a).compare(col.name(b)) < 0 ? -1 : 1;
        return true;
      }
      const Value* rv = constant_operand(*e.rhs);
      if (rv == nullptr) return false;
      c = compare_property_value(
          graph_.store().property(node, resolve_prop_key(*lp)), *rv);
      return true;
    }
    if (rp != nullptr) {
      // constant <op> var.key — compare flipped, then negate.
      const Value* lv = constant_operand(*e.lhs);
      if (lv == nullptr) return false;
      const int ridx = rows.column_index(rp->lhs->name);
      if (ridx < 0) return false;
      const Value& rbase = row[static_cast<std::size_t>(ridx)];
      if (!rbase.is_node()) return false;
      const int inner = compare_property_value(
          graph_.store().property(rbase.as_node().id, resolve_prop_key(*rp)),
          *lv);
      c = inner == -2 ? -2 : -inner;
      return true;
    }
    return false;
  }

  [[nodiscard]] Value eval_binary(const Expr& e, const RowSet& rows,
                                  const std::vector<Value>& row) const {
    // Short-circuit logic first.
    if (e.binary_op == BinaryOp::kAnd) {
      if (!eval_expr(*e.lhs, rows, row).truthy()) return Value(false);
      return Value(eval_expr(*e.rhs, rows, row).truthy());
    }
    if (e.binary_op == BinaryOp::kOr) {
      if (eval_expr(*e.lhs, rows, row).truthy()) return Value(true);
      return Value(eval_expr(*e.rhs, rows, row).truthy());
    }

    if (is_comparison_op(e.binary_op)) {
      int c = -2;
      if (try_compare_fast(e, rows, row, c)) {
        return compare_verdict(e.binary_op, c);
      }
      const Value a = eval_expr(*e.lhs, rows, row);
      const Value b = eval_expr(*e.rhs, rows, row);
      return compare_verdict(e.binary_op, compare_values(a, b));
    }

    const Value a = eval_expr(*e.lhs, rows, row);
    const Value b = eval_expr(*e.rhs, rows, row);
    switch (e.binary_op) {
      case BinaryOp::kContains:
        if (!a.is_string() || !b.is_string()) return Value(false);
        return Value(contains(a.as_string(), b.as_string()));
      case BinaryOp::kStartsWith:
        if (!a.is_string() || !b.is_string()) return Value(false);
        return Value(starts_with(a.as_string(), b.as_string()));
      case BinaryOp::kEndsWith:
        if (!a.is_string() || !b.is_string()) return Value(false);
        return Value(ends_with(a.as_string(), b.as_string()));
      case BinaryOp::kIn: {
        if (!b.is_list()) return Value(false);
        for (const Value& v : b.as_list()) {
          if (compare_values(a, v) == 0) return Value(true);
        }
        return Value(false);
      }
      case BinaryOp::kAdd:
        if (a.is_string() || b.is_string()) {
          return Value(a.to_display_string() + b.to_display_string());
        }
        if (a.is_int() && b.is_int()) return Value(a.as_int() + b.as_int());
        if (a.is_number() && b.is_number()) {
          return Value(a.as_number() + b.as_number());
        }
        fail("'+' on incompatible types");
      case BinaryOp::kSub:
        if (a.is_int() && b.is_int()) return Value(a.as_int() - b.as_int());
        if (a.is_number() && b.is_number()) {
          return Value(a.as_number() - b.as_number());
        }
        fail("'-' on non-numbers");
      case BinaryOp::kMul:
        if (a.is_int() && b.is_int()) return Value(a.as_int() * b.as_int());
        if (a.is_number() && b.is_number()) {
          return Value(a.as_number() * b.as_number());
        }
        fail("'*' on non-numbers");
      case BinaryOp::kDiv:
        if (a.is_int() && b.is_int()) {
          if (b.as_int() == 0) fail("division by zero");
          return Value(a.as_int() / b.as_int());
        }
        if (a.is_number() && b.is_number()) {
          return Value(a.as_number() / b.as_number());
        }
        fail("'/' on non-numbers");
      case BinaryOp::kMod:
        if (a.is_int() && b.is_int()) {
          if (b.as_int() == 0) fail("modulo by zero");
          return Value(a.as_int() % b.as_int());
        }
        fail("'%' on non-integers");
      default:
        break;  // logic/comparisons handled above
    }
    return Value();
  }

  [[nodiscard]] Value eval_scalar_function(const Expr& e, const RowSet& rows,
                                           const std::vector<Value>& row) const {
    const std::string name = to_lower(e.name);
    if (is_aggregate_function(name)) {
      fail("aggregate function '" + e.name +
           "' outside of WITH/RETURN projection");
    }
    auto arg = [&](std::size_t i) { return eval_expr(*e.args.at(i), rows, row); };
    if (name == "size") {
      const Value v = arg(0);
      if (v.is_list()) {
        return Value(static_cast<std::int64_t>(v.as_list().size()));
      }
      if (v.is_string()) {
        return Value(static_cast<std::int64_t>(v.as_string().size()));
      }
      return Value();
    }
    if (name == "head") {
      const Value v = arg(0);
      if (v.is_list() && !v.as_list().empty()) return v.as_list().front();
      return Value();
    }
    if (name == "last") {
      const Value v = arg(0);
      if (v.is_list() && !v.as_list().empty()) return v.as_list().back();
      return Value();
    }
    if (name == "tostring") return Value(arg(0).to_display_string());
    if (name == "id") {
      const Value v = arg(0);
      if (v.is_node()) return Value(static_cast<std::int64_t>(v.as_node().id));
      return Value();
    }
    if (name == "label" || name == "type") {
      const Value v = arg(0);
      if (v.is_node()) return Value(graph_.store().node_label(v.as_node().id));
      return Value();
    }
    if (name == "toupper") {
      const Value v = arg(0);
      if (!v.is_string()) return Value();
      std::string out = v.as_string();
      for (char& c : out) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
      return Value(std::move(out));
    }
    if (name == "tolower") {
      const Value v = arg(0);
      if (!v.is_string()) return Value();
      return Value(to_lower(v.as_string()));
    }
    if (name == "substring") {
      const Value v = arg(0);
      if (!v.is_string()) return Value();
      const auto start = static_cast<std::size_t>(
          std::max<std::int64_t>(0, arg(1).as_int()));
      const std::string& str = v.as_string();
      if (start >= str.size()) return Value(std::string{});
      if (e.args.size() >= 3) {
        const auto len = static_cast<std::size_t>(
            std::max<std::int64_t>(0, arg(2).as_int()));
        return Value(str.substr(start, len));
      }
      return Value(str.substr(start));
    }
    if (name == "split") {
      const Value v = arg(0);
      const Value d = arg(1);
      if (!v.is_string() || !d.is_string() || d.as_string().empty()) {
        return Value();
      }
      ValueList parts;
      const std::string& str = v.as_string();
      const std::string& delim = d.as_string();
      std::size_t pos = 0;
      while (true) {
        const std::size_t hit = str.find(delim, pos);
        if (hit == std::string::npos) {
          parts.emplace_back(str.substr(pos));
          break;
        }
        parts.emplace_back(str.substr(pos, hit - pos));
        pos = hit + delim.size();
      }
      return Value(std::move(parts));
    }
    if (name == "replace") {
      const Value v = arg(0);
      const Value from = arg(1);
      const Value to = arg(2);
      if (!v.is_string() || !from.is_string() || !to.is_string() ||
          from.as_string().empty()) {
        return Value();
      }
      std::string out = v.as_string();
      std::size_t pos = 0;
      while ((pos = out.find(from.as_string(), pos)) != std::string::npos) {
        out.replace(pos, from.as_string().size(), to.as_string());
        pos += to.as_string().size();
      }
      return Value(std::move(out));
    }
    if (name == "trim") {
      const Value v = arg(0);
      if (!v.is_string()) return Value();
      return Value(std::string(horus::trim(v.as_string())));
    }
    if (name == "abs") {
      const Value v = arg(0);
      if (v.is_int()) return Value(v.as_int() < 0 ? -v.as_int() : v.as_int());
      if (v.is_number()) {
        return Value(v.as_number() < 0 ? -v.as_number() : v.as_number());
      }
      return Value();
    }
    if (name == "tointeger") {
      const Value v = arg(0);
      if (v.is_int()) return v;
      if (v.is_number()) return Value(static_cast<std::int64_t>(v.as_number()));
      if (v.is_string()) {
        try {
          return Value(static_cast<std::int64_t>(std::stoll(v.as_string())));
        } catch (...) {
          return Value();
        }
      }
      return Value();
    }
    if (name == "coalesce") {
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        Value v = arg(i);
        if (!v.is_null()) return v;
      }
      return Value();
    }
    fail("unknown function '" + e.name + "'");
  }

  // ---- MATCH ----------------------------------------------------------------

  /// Inline pattern properties, evaluated against the incoming row. Keys
  /// are resolved to store ids here — candidate filtering below never hashes
  /// a key string per node.
  using EvaluatedProps = std::vector<std::pair<graph::PropKeyId, Value>>;

  [[nodiscard]] EvaluatedProps eval_pattern_props(
      const NodePattern& pattern, const RowSet& rows,
      const std::vector<Value>& row) const {
    const graph::GraphStore& store = graph_.store();
    EvaluatedProps out;
    out.reserve(pattern.properties.size());
    for (const auto& [key, expr] : pattern.properties) {
      out.emplace_back(store.prop_key_id(key), eval_expr(*expr, rows, row));
    }
    return out;
  }

  [[nodiscard]] bool node_matches(graph::NodeId node,
                                  const NodePattern& pattern,
                                  const EvaluatedProps& props) const {
    const graph::GraphStore& store = graph_.store();
    if (!pattern.label.empty() && pattern.label != "EVENT" &&
        store.node_label(node) != pattern.label) {
      return false;
    }
    for (const auto& [key, want] : props) {
      // Typed lookup: reference into the store, compared in place — no
      // PropertyValue or Value copy per candidate row.
      if (compare_property_value(store.property(node, key), want) != 0) {
        return false;
      }
    }
    return true;
  }

  /// Candidate nodes for a pattern head: narrowest available index.
  [[nodiscard]] std::vector<graph::NodeId> candidates(
      const NodePattern& pattern, const EvaluatedProps& props) const {
    const graph::GraphStore& store = graph_.store();
    // Prefer an indexed property lookup.
    for (const auto& [key, want] : props) {
      graph::PropertyValue pv;
      if (want.is_bool()) {
        pv = want.as_bool();
      } else if (want.is_int()) {
        pv = want.as_int();
      } else if (want.is_double()) {
        pv = want.as_number();
      } else if (want.is_string()) {
        pv = want.as_string();
      } else {
        continue;
      }
      // find_nodes falls back to a scan if unindexed; only use it when an
      // index exists so we do not scan repeatedly per property.
      std::vector<graph::NodeId> found = store.find_nodes(key, pv);
      std::erase_if(found, [&](graph::NodeId n) {
        return !node_matches(n, pattern, props);
      });
      return found;
    }
    if (!pattern.label.empty() && pattern.label != "EVENT") {
      std::vector<graph::NodeId> found = store.nodes_with_label(pattern.label);
      std::erase_if(found, [&](graph::NodeId n) {
        return !node_matches(n, pattern, props);
      });
      return found;
    }
    // Full scan. On a segmented store, an integer equality predicate on a
    // summarised key (lamportLogicalTime, timestamp) lets whole sealed
    // segments drop out by value range before any node is visited; ranges
    // come back in ascending id order, so output matches the plain scan.
    if (graph::SegmentManager* segments = store.segments()) {
      for (const auto& [key, want] : props) {
        if (key == graph::kNoPropKey || !want.is_int()) continue;
        std::vector<graph::NodeId> found;
        for (const auto& [begin, end] :
             segments->equality_scan_ranges(key, want.as_int())) {
          for (graph::NodeId n = begin; n < end; ++n) {
            if (node_matches(n, pattern, props)) found.push_back(n);
          }
        }
        return found;
      }
    }
    std::vector<graph::NodeId> found = store.all_nodes();
    std::erase_if(found, [&](graph::NodeId n) {
      return !node_matches(n, pattern, props);
    });
    return found;
  }

  /// Nodes reachable from `from` within [min_hops, max_hops] hops along
  /// edges of the requested type/direction (max_hops == 0 = unbounded).
  /// BFS over (node, depth) states — polynomial even on diamond-rich
  /// happens-before graphs.
  [[nodiscard]] std::vector<graph::NodeId> var_length_endpoints(
      graph::NodeId from, const PatternStep& step,
      std::optional<graph::EdgeTypeId> want_type, bool right) const {
    const graph::GraphStore& store = graph_.store();
    const std::uint32_t max_hops =
        step.max_hops == 0 ? std::numeric_limits<std::uint32_t>::max()
                           : step.max_hops;

    std::vector<graph::NodeId> result;
    if (step.min_hops <= 1 && step.max_hops == 0) {
      // Common fast path: plain reachability flood (any depth >= 1).
      std::vector<bool> seen(store.node_count(), false);
      std::vector<graph::NodeId> stack;
      auto expand = [&](graph::NodeId v) {
        const auto edges = right ? store.out_edges(v) : store.in_edges(v);
        for (const graph::Edge& e : edges) {
          if (want_type && e.type != *want_type) continue;
          if (!seen[e.to]) {
            seen[e.to] = true;
            result.push_back(e.to);
            stack.push_back(e.to);
          }
        }
      };
      expand(from);
      while (!stack.empty()) {
        const graph::NodeId v = stack.back();
        stack.pop_back();
        expand(v);
      }
      return result;
    }

    // General case: BFS over (node, depth) states up to max_hops.
    std::set<std::pair<graph::NodeId, std::uint32_t>> visited;
    std::set<graph::NodeId> endpoints;
    std::vector<std::pair<graph::NodeId, std::uint32_t>> frontier{{from, 0}};
    while (!frontier.empty()) {
      const auto [v, depth] = frontier.back();
      frontier.pop_back();
      if (depth >= max_hops) continue;
      const auto edges = right ? store.out_edges(v) : store.in_edges(v);
      for (const graph::Edge& e : edges) {
        if (want_type && e.type != *want_type) continue;
        const std::uint32_t next_depth = depth + 1;
        if (next_depth >= step.min_hops) endpoints.insert(e.to);
        if (visited.emplace(e.to, next_depth).second) {
          frontier.emplace_back(e.to, next_depth);
        }
      }
    }
    result.assign(endpoints.begin(), endpoints.end());
    return result;
  }

  /// Extends bindings with one path pattern; appends complete rows to out.
  void match_path(const PathPattern& path, const RowSet& schema,
                  std::vector<Value> row,
                  std::vector<std::string>& new_columns,
                  std::vector<std::vector<Value>>& out) const {
    // Binding map: variable -> column (existing schema or appended).
    // We evaluate the head, then steps left-to-right.
    auto bound_node = [&](const std::string& var,
                          const std::vector<Value>& current)
        -> std::optional<graph::NodeId> {
      if (var.empty()) return std::nullopt;
      const int idx = schema.column_index(var);
      if (idx >= 0) {
        const Value& v = current[static_cast<std::size_t>(idx)];
        if (v.is_node()) return v.as_node().id;
        if (!v.is_null()) fail("variable '" + var + "' is not a node");
      }
      // Check newly bound columns in this pattern.
      for (std::size_t i = schema.columns.size(); i < current.size(); ++i) {
        const std::size_t nc = i - schema.columns.size();
        if (nc < new_columns.size() && new_columns[nc] == var &&
            current[i].is_node()) {
          return current[i].as_node().id;
        }
      }
      return std::nullopt;
    };

    auto bind = [&](const std::string& var, graph::NodeId node,
                    std::vector<Value>& current) {
      if (var.empty()) return;
      if (bound_node(var, current)) return;  // already bound (checked equal)
      // Append as a new column if not yet present.
      std::size_t col = std::string::npos;
      for (std::size_t i = 0; i < new_columns.size(); ++i) {
        if (new_columns[i] == var) col = i;
      }
      if (col == std::string::npos) {
        new_columns.push_back(var);
        col = new_columns.size() - 1;
      }
      const std::size_t abs = schema.columns.size() + col;
      if (current.size() <= abs) current.resize(abs + 1);
      current[abs] = Value(NodeRef{node});
    };

    const graph::GraphStore& store = graph_.store();

    // Pattern property expressions are evaluated once per incoming row (they
    // may reference variables from earlier clauses, not pattern-local ones).
    const EvaluatedProps head_props = eval_pattern_props(path.head, schema, row);
    std::vector<EvaluatedProps> step_props;
    step_props.reserve(path.steps.size());
    for (const PatternStep& step : path.steps) {
      step_props.push_back(eval_pattern_props(step.node, schema, row));
    }

    // Recursive step matcher.
    std::function<void(std::size_t, graph::NodeId, std::vector<Value>&)>
        match_steps = [&](std::size_t step_index, graph::NodeId prev,
                          std::vector<Value>& current) {
          if (step_index == path.steps.size()) {
            out.push_back(current);
            return;
          }
          const PatternStep& step = path.steps[step_index];
          const bool right = step.direction == PatternStep::Direction::kRight;
          const auto want_type = step.edge_type.empty()
                                     ? std::nullopt
                                     : store.edge_type_id(step.edge_type);
          if (!step.edge_type.empty() && !want_type) return;  // no such type

          const auto pre_bound = bound_node(step.node.variable, current);
          auto try_endpoint = [&](graph::NodeId next) {
            if (pre_bound && *pre_bound != next) return;
            if (!node_matches(next, step.node, step_props[step_index])) {
              return;
            }
            std::vector<Value> extended = current;
            bind(step.node.variable, next, extended);
            match_steps(step_index + 1, next, extended);
          };

          if (step.min_hops == 1 && step.max_hops == 1) {
            const auto edges =
                right ? store.out_edges(prev) : store.in_edges(prev);
            for (const graph::Edge& edge : edges) {
              if (want_type && edge.type != *want_type) continue;
              try_endpoint(edge.to);
            }
            return;
          }

          // Variable-length relationship: endpoints reachable within the
          // hop bounds. Dialect note: one row per *distinct endpoint* (not
          // per path, as full Cypher would enumerate).
          for (const graph::NodeId endpoint :
               var_length_endpoints(prev, step, want_type, right)) {
            try_endpoint(endpoint);
          }
        };

    // Head candidates: reuse a prior binding when available.
    const auto head_bound = bound_node(path.head.variable, row);
    std::vector<graph::NodeId> heads;
    if (head_bound) {
      if (node_matches(*head_bound, path.head, head_props)) {
        heads.push_back(*head_bound);
      }
    } else {
      heads = candidates(path.head, head_props);
    }
    for (const graph::NodeId head : heads) {
      std::vector<Value> current = row;
      bind(path.head.variable, head, current);
      match_steps(0, head, current);
    }
  }

  [[nodiscard]] RowSet eval_match(const Clause& clause,
                                  const RowSet& input) const {
    QueryGuard* guard = options_.guard;
    RowSet current = input;
    for (const PathPattern& path : clause.patterns) {
      if (guard != nullptr && guard->stopped()) break;
      RowSet next;
      next.columns = current.columns;
      std::vector<std::string> new_columns;
      if (!fan_out(current.rows.size())) {
        for (const auto& row : current.rows) {
          const std::size_t before = next.rows.size();
          match_path(path, current, row, new_columns, next.rows);
          if (guard != nullptr &&
              !guard->admit_rows(next.rows.size() - before)) {
            break;
          }
        }
      } else {
        match_path_parallel(path, current, new_columns, next.rows);
      }
      for (const std::string& c : new_columns) next.columns.push_back(c);
      // Normalize row widths (rows bound before later columns existed).
      for (auto& row : next.rows) row.resize(next.columns.size());
      current = std::move(next);
    }
    return current;
  }

  /// Parallel MATCH fan-out: each fixed chunk of input rows expands into a
  /// chunk-local (new_columns, rows) pair; chunks are then merged in chunk
  /// order. A pattern variable's merged column position is determined by
  /// the first row (in input order) that binds it — exactly the sequential
  /// accumulation order — so the merged RowSet is identical to the
  /// sequential one for any thread count.
  void match_path_parallel(const PathPattern& path, const RowSet& current,
                           std::vector<std::string>& new_columns,
                           std::vector<std::vector<Value>>& out) const {
    struct ChunkOut {
      std::vector<std::string> new_columns;
      std::vector<std::vector<Value>> rows;
    };
    QueryGuard* guard = options_.guard;
    const std::size_t n = current.rows.size();
    const std::size_t grain = fan_out_grain(n);
    std::vector<ChunkOut> chunks(ThreadPool::chunk_count(n, grain));
    options_.effective_pool().parallel_for(
        n, grain, options_.effective_threads(),
        [&](ThreadPool::ChunkRange chunk) {
          ChunkOut& local = chunks[chunk.index];
          for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
            const std::size_t before = local.rows.size();
            match_path(path, current, current.rows[i], local.new_columns,
                       local.rows);
            if (guard != nullptr &&
                !guard->admit_rows(local.rows.size() - before)) {
              return;
            }
          }
        });

    // Merged column order: first-seen across chunks in chunk order. A
    // column's first-seen chunk is the chunk holding the first row that
    // binds it, and within a chunk discovery follows row order, so this is
    // the sequential discovery order.
    for (const ChunkOut& chunk : chunks) {
      for (const std::string& c : chunk.new_columns) {
        if (std::find(new_columns.begin(), new_columns.end(), c) ==
            new_columns.end()) {
          new_columns.push_back(c);
        }
      }
    }
    const std::size_t base = current.columns.size();
    for (ChunkOut& chunk : chunks) {
      // Local column j lands at merged position mapping[j].
      std::vector<std::size_t> mapping(chunk.new_columns.size());
      bool identity = true;
      for (std::size_t j = 0; j < chunk.new_columns.size(); ++j) {
        const auto it = std::find(new_columns.begin(), new_columns.end(),
                                  chunk.new_columns[j]);
        mapping[j] = static_cast<std::size_t>(it - new_columns.begin());
        identity = identity && mapping[j] == j;
      }
      if (identity) {
        for (auto& row : chunk.rows) out.push_back(std::move(row));
        continue;
      }
      for (auto& row : chunk.rows) {
        std::vector<Value> remapped(base + new_columns.size());
        for (std::size_t c = 0; c < base && c < row.size(); ++c) {
          remapped[c] = std::move(row[c]);
        }
        for (std::size_t j = 0; j < mapping.size(); ++j) {
          if (base + j < row.size()) {
            remapped[base + mapping[j]] = std::move(row[base + j]);
          }
        }
        out.push_back(std::move(remapped));
      }
    }
  }

  // ---- WHERE ----------------------------------------------------------------

  [[nodiscard]] RowSet eval_where(const Clause& clause,
                                  const RowSet& input) const {
    QueryGuard* guard = options_.guard;
    RowSet out;
    out.columns = input.columns;
    if (!fan_out(input.rows.size())) {
      for (const auto& row : input.rows) {
        if (guard != nullptr && !guard->keep_going()) break;
        if (eval_expr(*clause.predicate, input, row).truthy()) {
          out.rows.push_back(row);
        }
      }
      return out;
    }
    // Chunked filter; per-chunk survivors concatenate in chunk order, so
    // row order matches the sequential filter.
    const std::size_t n = input.rows.size();
    const std::size_t grain = fan_out_grain(n);
    std::vector<std::vector<std::vector<Value>>> chunks(
        ThreadPool::chunk_count(n, grain));
    options_.effective_pool().parallel_for(
        n, grain, options_.effective_threads(),
        [&](ThreadPool::ChunkRange chunk) {
          auto& local = chunks[chunk.index];
          for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
            if (guard != nullptr && !guard->keep_going()) return;
            if (eval_expr(*clause.predicate, input, input.rows[i]).truthy()) {
              local.push_back(input.rows[i]);
            }
          }
        });
    for (auto& local : chunks) {
      for (auto& row : local) out.rows.push_back(std::move(row));
    }
    return out;
  }

  // ---- WITH / RETURN ---------------------------------------------------------

  struct AggState {
    std::int64_t count = 0;
    ValueList collected;
    Value min_value;
    Value max_value;
    double sum = 0;
    std::int64_t sum_int = 0;
    bool all_int = true;
    std::set<std::string> seen;  // for DISTINCT aggregates
  };

  /// Evaluates expression `e` in aggregate context for one input row,
  /// folding into per-aggregate state. Returns nothing; finalization happens
  /// in finalize_aggregate.
  void fold_aggregate(const Expr& e, const RowSet& rows,
                      const std::vector<Value>& row, AggState& state) const {
    const std::string name = to_lower(e.name);
    Value v;
    const bool star = !e.args.empty() && e.args[0]->kind == Expr::Kind::kStar;
    if (!star && !e.args.empty()) v = eval_expr(*e.args[0], rows, row);
    if (name == "count") {
      if (star) {
        ++state.count;
        return;
      }
      if (v.is_null()) return;
      if (e.distinct) {
        const std::string key = v.to_display_string();
        if (!state.seen.insert(key).second) return;
      }
      ++state.count;
      return;
    }
    if (v.is_null()) return;
    if (e.distinct) {
      const std::string key = v.to_display_string();
      if (!state.seen.insert(key).second) return;
    }
    if (name == "collect") {
      state.collected.push_back(v);
    } else if (name == "min") {
      if (state.min_value.is_null() || compare_values(v, state.min_value) == -1) {
        state.min_value = v;
      }
    } else if (name == "max") {
      if (state.max_value.is_null() || compare_values(v, state.max_value) == 1) {
        state.max_value = v;
      }
    } else if (name == "sum" || name == "avg") {
      if (!v.is_number()) fail("sum/avg of non-number");
      ++state.count;
      state.sum += v.as_number();
      if (v.is_int()) {
        state.sum_int += v.as_int();
      } else {
        state.all_int = false;
      }
    }
  }

  [[nodiscard]] Value finalize_aggregate(const Expr& e,
                                         const AggState& state) const {
    const std::string name = to_lower(e.name);
    if (name == "count") return Value(state.count);
    if (name == "collect") return Value(state.collected);
    if (name == "min") return state.min_value;
    if (name == "max") return state.max_value;
    if (name == "sum") {
      return state.all_int ? Value(state.sum_int) : Value(state.sum);
    }
    if (name == "avg") {
      return state.count == 0 ? Value() : Value(state.sum / double(state.count));
    }
    fail("unknown aggregate '" + e.name + "'");
  }

  /// Evaluates a projection expression *after* grouping, substituting each
  /// aggregate sub-expression with its finalized value.
  [[nodiscard]] Value eval_with_aggregates(
      const Expr& e, const RowSet& rows, const std::vector<Value>& sample_row,
      const std::vector<std::pair<const Expr*, Value>>& finalized) const {
    for (const auto& [agg_expr, value] : finalized) {
      if (agg_expr == &e) return value;
    }
    if (e.kind == Expr::Kind::kBinary) {
      // Rebuild binary ops over substituted children.
      const Value a = eval_with_aggregates(*e.lhs, rows, sample_row, finalized);
      const Value b = eval_with_aggregates(*e.rhs, rows, sample_row, finalized);
      Expr lit_a;
      lit_a.kind = Expr::Kind::kLiteral;
      lit_a.literal = a;
      Expr lit_b;
      lit_b.kind = Expr::Kind::kLiteral;
      lit_b.literal = b;
      Expr combined;
      combined.kind = Expr::Kind::kBinary;
      combined.binary_op = e.binary_op;
      combined.lhs = std::make_unique<Expr>(std::move(lit_a));
      combined.rhs = std::make_unique<Expr>(std::move(lit_b));
      return eval_binary(combined, rows, sample_row);
    }
    return eval_expr(e, rows, sample_row);
  }

  /// Collects pointers to all aggregate calls within an expression.
  static void collect_aggregates(const Expr& e,
                                 std::vector<const Expr*>& out) {
    if (e.kind == Expr::Kind::kFunction && is_aggregate_function(e.name)) {
      out.push_back(&e);
      return;  // aggregates do not nest
    }
    if (e.lhs) collect_aggregates(*e.lhs, out);
    if (e.rhs) collect_aggregates(*e.rhs, out);
    for (const auto& a : e.args) {
      if (a) collect_aggregates(*a, out);
    }
  }

  [[nodiscard]] RowSet eval_projection(const Clause& clause,
                                       const RowSet& input) const {
    // RETURN * / WITH *: pass all current columns through (optionally
    // alongside further explicit items, Cypher-style "WITH *, expr AS x").
    Clause expanded;
    const Clause* effective = &clause;
    bool has_star = false;
    for (const auto& item : clause.projections) {
      if (item.expr->kind == Expr::Kind::kStar) has_star = true;
    }
    if (has_star) {
      expanded.kind = clause.kind;
      expanded.distinct = clause.distinct;
      for (const auto& column : input.columns) {
        ProjectionItem item;
        item.expr = std::make_unique<Expr>();
        item.expr->kind = Expr::Kind::kVariable;
        item.expr->name = column;
        item.alias = column;
        expanded.projections.push_back(std::move(item));
      }
      for (const auto& item : clause.projections) {
        if (item.expr->kind == Expr::Kind::kStar) continue;
        ProjectionItem copy;
        copy.expr = clone_expr(*item.expr);
        copy.alias = item.alias;
        expanded.projections.push_back(std::move(copy));
      }
      for (const auto& sort_item : clause.order_by) {
        SortItem copy;
        copy.expr = clone_expr(*sort_item.expr);
        copy.ascending = sort_item.ascending;
        expanded.order_by.push_back(std::move(copy));
      }
      expanded.limit = clause.limit;
      effective = &expanded;
    }
    return eval_projection_expanded(*effective, input);
  }

  /// Deep copy of an expression tree (used by RETURN * expansion).
  static ExprPtr clone_expr(const Expr& e) {
    auto out = std::make_unique<Expr>();
    out->kind = e.kind;
    out->literal = e.literal;
    out->name = e.name;
    out->binary_op = e.binary_op;
    out->unary_op = e.unary_op;
    out->distinct = e.distinct;
    if (e.lhs) out->lhs = clone_expr(*e.lhs);
    if (e.rhs) out->rhs = clone_expr(*e.rhs);
    for (const auto& a : e.args) {
      out->args.push_back(a ? clone_expr(*a) : nullptr);
    }
    return out;
  }

  [[nodiscard]] RowSet eval_projection_expanded(const Clause& clause,
                                                const RowSet& input) const {
    RowSet out;
    for (const auto& item : clause.projections) {
      out.columns.push_back(item.alias);
    }

    bool any_aggregate = false;
    for (const auto& item : clause.projections) {
      if (contains_aggregate(*item.expr)) any_aggregate = true;
    }

    // ORDER BY may reference projection aliases *or* pre-projection
    // variables (Cypher semantics), so sort keys are evaluated in a combined
    // context: input columns followed by output columns.
    RowSet sort_ctx;
    sort_ctx.columns = input.columns;
    for (const auto& c : out.columns) sort_ctx.columns.push_back(c);
    std::vector<std::vector<Value>> sort_keys;
    auto record_sort_keys = [&](const std::vector<Value>& source_row,
                                const std::vector<Value>& projected) {
      if (clause.order_by.empty()) return;
      std::vector<Value> ctx_row = source_row;
      ctx_row.insert(ctx_row.end(), projected.begin(), projected.end());
      std::vector<Value> keys;
      keys.reserve(clause.order_by.size());
      for (const SortItem& item : clause.order_by) {
        keys.push_back(eval_expr(*item.expr, sort_ctx, ctx_row));
      }
      sort_keys.push_back(std::move(keys));
    };

    QueryGuard* guard = options_.guard;
    if (!any_aggregate) {
      for (const auto& row : input.rows) {
        if (guard != nullptr && !guard->admit_rows()) break;
        std::vector<Value> projected;
        projected.reserve(clause.projections.size());
        for (const auto& item : clause.projections) {
          projected.push_back(eval_expr(*item.expr, input, row));
        }
        record_sort_keys(row, projected);
        out.rows.push_back(std::move(projected));
      }
    } else {
      // Group by the values of non-aggregate projections.
      struct Group {
        std::vector<Value> keys;             // per non-aggregate projection
        std::vector<Value> sample_row;       // representative input row
        std::vector<AggState> agg_states;    // per aggregate expression
      };
      std::vector<const Expr*> aggregates;
      for (const auto& item : clause.projections) {
        collect_aggregates(*item.expr, aggregates);
      }
      std::vector<std::size_t> key_items;  // projections with no aggregate
      for (std::size_t i = 0; i < clause.projections.size(); ++i) {
        if (!contains_aggregate(*clause.projections[i].expr)) {
          key_items.push_back(i);
        }
      }

      std::map<std::string, Group> groups;  // key-string -> group
      for (const auto& row : input.rows) {
        if (guard != nullptr && !guard->keep_going()) break;
        std::vector<Value> keys;
        std::string key_str;
        for (const std::size_t i : key_items) {
          Value v = eval_expr(*clause.projections[i].expr, input, row);
          key_str += v.to_display_string();
          key_str += '\x1f';
          keys.push_back(std::move(v));
        }
        auto [it, inserted] = groups.try_emplace(key_str);
        Group& g = it->second;
        if (inserted) {
          g.keys = std::move(keys);
          g.sample_row = row;
          g.agg_states.resize(aggregates.size());
        }
        for (std::size_t a = 0; a < aggregates.size(); ++a) {
          fold_aggregate(*aggregates[a], input, row, g.agg_states[a]);
        }
      }

      for (auto& [key, group] : groups) {
        std::vector<std::pair<const Expr*, Value>> finalized;
        finalized.reserve(aggregates.size());
        for (std::size_t a = 0; a < aggregates.size(); ++a) {
          finalized.emplace_back(aggregates[a],
                                 finalize_aggregate(*aggregates[a],
                                                    group.agg_states[a]));
        }
        std::vector<Value> projected;
        std::size_t key_cursor = 0;
        for (std::size_t i = 0; i < clause.projections.size(); ++i) {
          if (!contains_aggregate(*clause.projections[i].expr)) {
            projected.push_back(group.keys[key_cursor++]);
          } else {
            projected.push_back(eval_with_aggregates(
                *clause.projections[i].expr, input, group.sample_row,
                finalized));
          }
        }
        record_sort_keys(group.sample_row, projected);
        out.rows.push_back(std::move(projected));
      }
    }

    if (clause.distinct) {
      std::set<std::string> seen;
      std::vector<std::vector<Value>> unique;
      std::vector<std::vector<Value>> unique_keys;
      for (std::size_t i = 0; i < out.rows.size(); ++i) {
        std::string key;
        for (const Value& v : out.rows[i]) {
          key += v.to_display_string();
          key += '\x1f';
        }
        if (seen.insert(key).second) {
          unique.push_back(std::move(out.rows[i]));
          if (!sort_keys.empty()) unique_keys.push_back(std::move(sort_keys[i]));
        }
      }
      out.rows = std::move(unique);
      sort_keys = std::move(unique_keys);
    }

    if (!clause.order_by.empty()) {
      std::vector<std::size_t> order(out.rows.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         for (std::size_t k = 0; k < clause.order_by.size();
                              ++k) {
                           const int c = compare_values(sort_keys[a][k],
                                                        sort_keys[b][k]);
                           if (c == -1) return clause.order_by[k].ascending;
                           if (c == 1) return !clause.order_by[k].ascending;
                         }
                         return false;
                       });
      std::vector<std::vector<Value>> sorted;
      sorted.reserve(out.rows.size());
      for (const std::size_t i : order) sorted.push_back(std::move(out.rows[i]));
      out.rows = std::move(sorted);
    }

    if (clause.limit && out.rows.size() >
                            static_cast<std::size_t>(*clause.limit)) {
      out.rows.resize(static_cast<std::size_t>(*clause.limit));
    }
    return out;
  }

  // ---- UNWIND ---------------------------------------------------------------

  [[nodiscard]] RowSet eval_unwind(const Clause& clause,
                                   const RowSet& input) const {
    QueryGuard* guard = options_.guard;
    RowSet out;
    out.columns = input.columns;
    out.columns.push_back(clause.unwind_alias);
    for (const auto& row : input.rows) {
      if (guard != nullptr && guard->stopped()) break;
      const Value v = eval_expr(*clause.unwind_expr, input, row);
      if (v.is_null()) continue;
      if (v.is_list()) {
        for (const Value& item : v.as_list()) {
          if (guard != nullptr && !guard->admit_rows()) break;
          auto extended = row;
          extended.push_back(item);
          out.rows.push_back(std::move(extended));
        }
      } else {
        if (guard != nullptr && !guard->admit_rows()) break;
        auto extended = row;
        extended.push_back(v);
        out.rows.push_back(std::move(extended));
      }
    }
    return out;
  }

  // ---- CALL -----------------------------------------------------------------

  [[nodiscard]] RowSet eval_call(const Clause& clause,
                                 const RowSet& input) const {
    auto pit = procedures_.find(clause.call_procedure);
    if (pit == procedures_.end()) {
      fail("unknown procedure '" + clause.call_procedure + "'");
    }
    const ProcedureDef& proc = pit->second;

    // Which yield columns (and their order).
    std::vector<std::size_t> selected;
    const auto& names = clause.yield_names.empty() ? proc.yield_columns
                                                   : clause.yield_names;
    for (const std::string& name : names) {
      bool found = false;
      for (std::size_t i = 0; i < proc.yield_columns.size(); ++i) {
        if (proc.yield_columns[i] == name) {
          selected.push_back(i);
          found = true;
          break;
        }
      }
      if (!found) {
        fail("procedure '" + clause.call_procedure + "' does not yield '" +
             name + "'");
      }
    }

    RowSet out;
    out.columns = input.columns;
    for (const std::string& name : names) out.columns.push_back(name);

    auto call_row = [&](const std::vector<Value>& row,
                        std::vector<std::vector<Value>>& sink) {
      std::vector<Value> args;
      args.reserve(clause.call_args.size());
      for (const auto& a : clause.call_args) {
        args.push_back(eval_expr(*a, input, row));
      }
      for (const auto& yielded : proc.fn(args)) {
        auto extended = row;
        for (const std::size_t i : selected) {
          extended.push_back(yielded.at(i));
        }
        sink.push_back(std::move(extended));
      }
    };

    QueryGuard* guard = options_.guard;
    if (!fan_out(input.rows.size())) {
      for (const auto& row : input.rows) {
        const std::size_t before = out.rows.size();
        call_row(row, out.rows);
        if (guard != nullptr && !guard->admit_rows(out.rows.size() - before)) {
          break;
        }
      }
      return out;
    }
    // Independent per-row procedure calls dispatched to the pool; yielded
    // rows concatenate in chunk order, matching the sequential loop.
    const std::size_t n = input.rows.size();
    const std::size_t grain = fan_out_grain(n);
    std::vector<std::vector<std::vector<Value>>> chunks(
        ThreadPool::chunk_count(n, grain));
    options_.effective_pool().parallel_for(
        n, grain, options_.effective_threads(),
        [&](ThreadPool::ChunkRange chunk) {
          auto& local = chunks[chunk.index];
          for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
            const std::size_t before = local.size();
            call_row(input.rows[i], local);
            if (guard != nullptr &&
                !guard->admit_rows(local.size() - before)) {
              return;
            }
          }
        });
    for (auto& local : chunks) {
      for (auto& row : local) out.rows.push_back(std::move(row));
    }
    return out;
  }
};

}  // namespace horus::query::internal
