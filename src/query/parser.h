// Recursive-descent parser for the Horus query language.
#pragma once

#include <string_view>

#include "query/ast.h"
#include "query/lexer.h"

namespace horus::query {

/// Parses a complete query; throws QueryError with a byte offset on
/// malformed input.
[[nodiscard]] Query parse_query(std::string_view text);

}  // namespace horus::query
