// Abstract syntax tree of the Horus query language.
//
// A query is a linear sequence of clauses, evaluated as a row pipeline in
// the Cypher style: each clause transforms the current set of binding rows.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "query/value.h"

namespace horus::query {

// ---- expressions -----------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinaryOp {
  kAnd, kOr,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kContains, kStartsWith, kEndsWith, kIn,
  kAdd, kSub, kMul, kDiv, kMod,
};

enum class UnaryOp { kNot, kNeg };

struct Expr {
  enum class Kind {
    kLiteral,    ///< value
    kVariable,   ///< name
    kProperty,   ///< object.property (object is an expression)
    kBinary,
    kUnary,
    kFunction,   ///< name(args...); aggregates included (min, collect, ...)
    kList,       ///< [a, b, c]
    kStar,       ///< '*' — count(*) / RETURN *
    kParameter,  ///< $name, bound at run() time
  };

  Kind kind = Kind::kLiteral;
  Value literal;
  std::string name;        // variable, property key, or function name
  BinaryOp binary_op = BinaryOp::kEq;
  UnaryOp unary_op = UnaryOp::kNot;
  ExprPtr lhs;             // binary lhs / unary operand / property object
  ExprPtr rhs;
  std::vector<ExprPtr> args;
  bool distinct = false;   // count(DISTINCT x)
};

// ---- patterns --------------------------------------------------------------

struct NodePattern {
  std::string variable;  ///< may be empty (anonymous)
  std::string label;     ///< may be empty; "EVENT" matches any event node
  /// Inline property equality constraints {key: expr}. Expressions are
  /// evaluated against the incoming row (they may reference variables bound
  /// by earlier clauses, as in the paper's Fig. 4a query).
  std::vector<std::pair<std::string, ExprPtr>> properties;
};

struct PatternStep {
  /// Direction of the edge leading *into* `node` from the previous node.
  enum class Direction { kRight, kLeft };
  Direction direction = Direction::kRight;
  std::string edge_type;  ///< empty = any edge type
  /// Hop bounds for variable-length relationships:
  ///   -->            min=1 max=1
  ///   -[*]->         min=1 max=unbounded (0)
  ///   -[*2..4]->     min=2 max=4
  ///   -[*..3]->      min=1 max=3
  /// max_hops == 0 means unbounded.
  std::uint32_t min_hops = 1;
  std::uint32_t max_hops = 1;
  NodePattern node;
};

struct PathPattern {
  NodePattern head;
  std::vector<PatternStep> steps;
};

// ---- clauses ---------------------------------------------------------------

struct ProjectionItem {
  ExprPtr expr;
  std::string alias;  ///< defaults to the expression's source text
};

struct SortItem {
  ExprPtr expr;
  bool ascending = true;
};

struct Clause {
  enum class Kind { kMatch, kWhere, kWith, kUnwind, kCall, kReturn };

  Kind kind = Kind::kMatch;

  std::vector<PathPattern> patterns;              // MATCH
  ExprPtr predicate;                              // WHERE
  std::vector<ProjectionItem> projections;        // WITH / RETURN
  bool distinct = false;                          // WITH/RETURN DISTINCT
  std::vector<SortItem> order_by;                 // trailing ORDER BY
  std::optional<std::int64_t> limit;              // trailing LIMIT
  ExprPtr unwind_expr;                            // UNWIND <expr> AS <alias>
  std::string unwind_alias;
  std::string call_procedure;                     // CALL <name>(...)
  std::vector<ExprPtr> call_args;
  std::vector<std::string> yield_names;           // YIELD a, b
};

struct Query {
  std::vector<Clause> clauses;
};

}  // namespace horus::query
