// Tokenizer for the Horus query language (a Cypher dialect).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace horus::query {

class QueryError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class TokenKind {
  kIdent,     // foo, horus.getCausalGraph (dotted names are split)
  kKeyword,   // MATCH, WHERE, ... (uppercased)
  kInteger,
  kFloat,
  kString,    // 'single' or "double" quoted
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kColon, kDot, kStar, kSlash, kPercent,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kPlus,
  kDotDot,      // ..  (hop ranges in -[*1..3]->)
  kParam,       // $name
  kArrowRight,  // -->
  kArrowLeft,   // <--
  kDash,        // -   (minus, and relationship syntax)
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier/keyword/string payload
  std::int64_t int_value = 0;
  double float_value = 0;
  std::size_t offset = 0; // byte offset for error messages
};

/// Keywords recognized (case-insensitive in source, canonical upper-case in
/// Token::text).
[[nodiscard]] bool is_keyword(std::string_view upper);

/// Tokenizes the query text; throws QueryError on malformed input.
[[nodiscard]] std::vector<Token> tokenize(std::string_view text);

}  // namespace horus::query
