#include "query/procedures.h"

namespace horus::query {

namespace {

graph::NodeId node_arg(const Value& v, const char* proc) {
  if (v.is_node()) return v.as_node().id;
  if (v.is_int()) return static_cast<graph::NodeId>(v.as_int());
  throw QueryError(std::string(proc) + ": argument must be a node");
}

/// True once the shared guard has tripped — procedures invoked per input row
/// then yield nothing instead of running the engine again.
bool guard_stopped(const QueryOptions& options) {
  return options.guard != nullptr && options.guard->stopped();
}

}  // namespace

void register_horus_procedures(QueryEngine& engine, const ExecutionGraph& graph,
                               const ClockTable& clocks,
                               QueryOptions options) {
  engine.register_procedure(
      "horus.happensBefore",
      ProcedureDef{
          {"result"},
          [&graph, &clocks, options](const std::vector<Value>& args) {
            if (args.size() != 2) {
              throw QueryError("horus.happensBefore expects (a, b)");
            }
            if (guard_stopped(options)) {
              return std::vector<std::vector<Value>>{};
            }
            const CausalQueryEngine q(graph, clocks, options);
            if (options.profile != nullptr) {
              options.profile->add_vc_comparisons(1);
            }
            const bool hb = q.happens_before(
                node_arg(args[0], "horus.happensBefore"),
                node_arg(args[1], "horus.happensBefore"));
            return std::vector<std::vector<Value>>{{Value(hb)}};
          }});

  engine.register_procedure(
      "horus.getCausalEdges",
      ProcedureDef{
          {"from", "to"},
          [&graph, &clocks, options](const std::vector<Value>& args) {
            if (args.size() != 2) {
              throw QueryError("horus.getCausalEdges expects (a, b)");
            }
            if (guard_stopped(options)) {
              return std::vector<std::vector<Value>>{};
            }
            const CausalQueryEngine q(graph, clocks, options);
            const CausalGraphResult result = q.get_causal_graph(
                node_arg(args[0], "horus.getCausalEdges"),
                node_arg(args[1], "horus.getCausalEdges"));
            std::vector<std::vector<Value>> rows;
            rows.reserve(result.edges.size());
            for (const auto& [from, to] : result.edges) {
              rows.push_back({Value(NodeRef{from}), Value(NodeRef{to})});
            }
            return rows;
          }});

  engine.register_procedure(
      "horus.getCausalGraph",
      ProcedureDef{
          {"node"},
          [&graph, &clocks, options](const std::vector<Value>& args) {
            if (args.size() < 2 || args.size() > 3) {
              throw QueryError(
                  "horus.getCausalGraph expects (a, b[, onlyLogs])");
            }
            const bool only_logs =
                args.size() == 3 && args[2].is_bool() && args[2].as_bool();
            if (guard_stopped(options)) {
              return std::vector<std::vector<Value>>{};
            }
            const CausalQueryEngine q(graph, clocks, options);
            const CausalGraphResult result = q.get_causal_graph(
                node_arg(args[0], "horus.getCausalGraph"),
                node_arg(args[1], "horus.getCausalGraph"), only_logs);
            std::vector<std::vector<Value>> rows;
            rows.reserve(result.nodes.size());
            for (const graph::NodeId node : result.nodes) {
              rows.push_back({Value(NodeRef{node})});
            }
            return rows;
          }});
}

}  // namespace horus::query
