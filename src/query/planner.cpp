#include "query/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "graph/segment.h"

namespace horus::query {

namespace {

constexpr std::int64_t kInt64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kInt64Max = std::numeric_limits<std::int64_t>::max();

[[nodiscard]] std::string clause_name(const Clause& clause) {
  switch (clause.kind) {
    case Clause::Kind::kMatch: return "MATCH";
    case Clause::Kind::kWhere: return "WHERE";
    case Clause::Kind::kWith: return "WITH";
    case Clause::Kind::kReturn: return "RETURN";
    case Clause::Kind::kUnwind: return "UNWIND";
    case Clause::Kind::kCall: return "CALL " + clause.call_procedure;
  }
  return "?";
}

[[nodiscard]] std::string value_to_text(const Value& v) {
  if (v.is_string()) return '"' + v.as_string() + '"';
  return v.to_display_string();
}

[[nodiscard]] std::string_view binary_op_symbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNeq: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kContains: return "CONTAINS";
    case BinaryOp::kStartsWith: return "STARTS WITH";
    case BinaryOp::kEndsWith: return "ENDS WITH";
    case BinaryOp::kIn: return "IN";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
  }
  return "?";
}

[[nodiscard]] bool is_comparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNeq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

/// a <op> b written as b <op'> a.
[[nodiscard]] BinaryOp flip_comparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // eq/neq are symmetric
  }
}

/// Splits a conjunction into its conjuncts, left-to-right — the order the
/// legacy evaluator would reach them under short-circuit AND.
void flatten_and(const Expr* e, std::vector<const Expr*>& out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kBinary && e->binary_op == BinaryOp::kAnd) {
    flatten_and(e->lhs.get(), out);
    flatten_and(e->rhs.get(), out);
    return;
  }
  out.push_back(e);
}

/// Row-independent constant: a literal, or a parameter present in `params`.
[[nodiscard]] std::optional<Value> const_value(const Expr& e,
                                               const QueryParams& params) {
  if (e.kind == Expr::Kind::kLiteral) return e.literal;
  if (e.kind == Expr::Kind::kParameter) {
    auto it = params.find(e.name);
    if (it != params.end()) return it->second;
  }
  return std::nullopt;
}

/// True when evaluating `e` over a row binding only `head_var` (to a node)
/// can neither throw nor depend on anything but that node — the condition
/// for moving the conjunct ahead of its source position. Arithmetic,
/// negation, functions and missing parameters all stay pinned: they can
/// raise errors, and reordering would change *which rows* raise them.
[[nodiscard]] bool is_safe_expr(const Expr& e, const std::string& head_var,
                                const QueryParams& params) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return true;
    case Expr::Kind::kParameter:
      return params.find(e.name) != params.end();
    case Expr::Kind::kVariable:
      return e.name == head_var;
    case Expr::Kind::kProperty:
      return e.lhs != nullptr && e.lhs->kind == Expr::Kind::kVariable &&
             e.lhs->name == head_var;
    case Expr::Kind::kBinary:
      switch (e.binary_op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
        case BinaryOp::kEq:
        case BinaryOp::kNeq:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
        case BinaryOp::kContains:
        case BinaryOp::kStartsWith:
        case BinaryOp::kEndsWith:
        case BinaryOp::kIn:
          return is_safe_expr(*e.lhs, head_var, params) &&
                 is_safe_expr(*e.rhs, head_var, params);
        default:
          return false;  // arithmetic can throw
      }
    case Expr::Kind::kUnary:
      return e.unary_op == UnaryOp::kNot &&
             is_safe_expr(*e.lhs, head_var, params);
    case Expr::Kind::kList:
      return std::all_of(e.args.begin(), e.args.end(), [&](const ExprPtr& a) {
        return a != nullptr && is_safe_expr(*a, head_var, params);
      });
    default:
      return false;  // functions, '*'
  }
}

/// `head.key <cmp> constant` (either side), normalized so the property is
/// on the left. `flipped` records that the source had the constant first;
/// `op` is already flipped to match the normalized orientation.
struct CmpShape {
  const Expr* prop = nullptr;  // the property access
  graph::PropKeyId key = graph::kNoPropKey;
  std::string key_name;
  BinaryOp op = BinaryOp::kEq;
  Value constant;
  bool flipped = false;
};

[[nodiscard]] std::optional<CmpShape> comparison_shape(
    const Expr& e, const std::string& head_var, const QueryParams& params,
    const graph::GraphStore& store) {
  if (e.kind != Expr::Kind::kBinary || !is_comparison(e.binary_op)) {
    return std::nullopt;
  }
  auto head_prop = [&](const Expr& x) -> const Expr* {
    if (x.kind == Expr::Kind::kProperty && x.lhs != nullptr &&
        x.lhs->kind == Expr::Kind::kVariable && x.lhs->name == head_var) {
      return &x;
    }
    return nullptr;
  };
  CmpShape shape;
  if (const Expr* p = head_prop(*e.lhs)) {
    const auto c = const_value(*e.rhs, params);
    if (!c) return std::nullopt;
    shape.prop = p;
    shape.op = e.binary_op;
    shape.constant = *c;
  } else if (const Expr* q = head_prop(*e.rhs)) {
    const auto c = const_value(*e.lhs, params);
    if (!c) return std::nullopt;
    shape.prop = q;
    shape.op = flip_comparison(e.binary_op);
    shape.constant = *c;
    shape.flipped = true;
  } else {
    return std::nullopt;
  }
  shape.key_name = shape.prop->name;
  shape.key = store.prop_key_id(shape.key_name);
  return shape;
}

/// Integer window accumulated from range conjuncts on one key.
struct Bounds {
  std::int64_t lo = kInt64Min;
  std::int64_t hi = kInt64Max;
  bool constrained = false;  // at least one conjunct tightened a bound
  bool empty = false;

  void tighten_lo(std::int64_t v) {
    lo = std::max(lo, v);
    constrained = true;
    if (lo > hi) empty = true;
  }
  void tighten_hi(std::int64_t v) {
    hi = std::min(hi, v);
    constrained = true;
    if (lo > hi) empty = true;
  }
};

[[nodiscard]] std::int64_t clamp_to_int64(double v) {
  if (v <= static_cast<double>(kInt64Min)) return kInt64Min;
  if (v >= static_cast<double>(kInt64Max)) return kInt64Max;
  return static_cast<std::int64_t>(v);
}

/// Folds one numeric comparison into the window. Exact for int64 stored
/// values: fractional bounds round inward, fractional equality empties.
/// Returns false when the constant is not numeric (bounds untouched).
[[nodiscard]] bool apply_bound(Bounds& b, BinaryOp op, const Value& constant) {
  if (!constant.is_number()) return false;
  if (constant.is_int()) {
    const std::int64_t k = constant.as_int();
    switch (op) {
      case BinaryOp::kEq: b.tighten_lo(k); b.tighten_hi(k); return true;
      case BinaryOp::kGe: b.tighten_lo(k); return true;
      case BinaryOp::kGt:
        if (k == kInt64Max) { b.tighten_lo(k); b.empty = true; }
        else b.tighten_lo(k + 1);
        return true;
      case BinaryOp::kLe: b.tighten_hi(k); return true;
      case BinaryOp::kLt:
        if (k == kInt64Min) { b.tighten_hi(k); b.empty = true; }
        else b.tighten_hi(k - 1);
        return true;
      default: return false;  // <> does not bound a window
    }
  }
  const double c = constant.as_number();
  const bool integral = std::floor(c) == c;
  switch (op) {
    case BinaryOp::kEq:
      if (!integral) { b.constrained = true; b.empty = true; return true; }
      b.tighten_lo(clamp_to_int64(c));
      b.tighten_hi(clamp_to_int64(c));
      return true;
    case BinaryOp::kGe: b.tighten_lo(clamp_to_int64(std::ceil(c))); return true;
    case BinaryOp::kGt:
      b.tighten_lo(clamp_to_int64(std::floor(c) + 1.0));
      return true;
    case BinaryOp::kLe: b.tighten_hi(clamp_to_int64(std::floor(c))); return true;
    case BinaryOp::kLt:
      b.tighten_hi(clamp_to_int64(std::ceil(c) - 1.0));
      return true;
    default: return false;
  }
}

[[nodiscard]] std::string bounds_to_text(std::int64_t lo, std::int64_t hi) {
  std::string out = "[";
  out += lo == kInt64Min ? std::string("-inf") : std::to_string(lo);
  out += ", ";
  out += hi == kInt64Max ? std::string("+inf") : std::to_string(hi);
  out += ']';
  return out;
}

[[nodiscard]] std::string format_rows(double v) {
  if (v < 0) return "?";
  if (v == std::floor(v) && v < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

}  // namespace

std::string_view scan_kind_name(ScanKind kind) noexcept {
  switch (kind) {
    case ScanKind::kAllNodes: return "all-nodes";
    case ScanKind::kLabel: return "label";
    case ScanKind::kIndexEq: return "index-eq";
    case ScanKind::kRange: return "range";
    case ScanKind::kSegmentSkip: return "segment-skip";
    case ScanKind::kPatternProps: return "pattern-props";
  }
  return "?";
}

std::string expr_to_string(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return value_to_text(e.literal);
    case Expr::Kind::kVariable:
      return e.name;
    case Expr::Kind::kProperty:
      return expr_to_string(*e.lhs) + "." + e.name;
    case Expr::Kind::kBinary:
      return "(" + expr_to_string(*e.lhs) + " " +
             std::string(binary_op_symbol(e.binary_op)) + " " +
             expr_to_string(*e.rhs) + ")";
    case Expr::Kind::kUnary:
      if (e.unary_op == UnaryOp::kNot) return "NOT " + expr_to_string(*e.lhs);
      return "-" + expr_to_string(*e.lhs);
    case Expr::Kind::kFunction: {
      std::string out = e.name + "(";
      if (e.distinct) out += "DISTINCT ";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += e.args[i] ? expr_to_string(*e.args[i]) : "?";
      }
      out += ')';
      return out;
    }
    case Expr::Kind::kList: {
      std::string out = "[";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += e.args[i] ? expr_to_string(*e.args[i]) : "?";
      }
      out += ']';
      return out;
    }
    case Expr::Kind::kStar:
      return "*";
    case Expr::Kind::kParameter:
      return "$" + e.name;
  }
  return "?";
}

Plan Planner::plan(const Query& query) const {
  const graph::GraphStore& store = graph_.store();
  Plan p;
  p.query = &query;

  auto fallback = [&](std::string reason) {
    p.planned = false;
    p.fallback_reason = std::move(reason);
    return p;
  };

  if (query.clauses.empty()) return fallback("empty query");
  const Clause& first = query.clauses.front();
  if (first.kind != Clause::Kind::kMatch) {
    return fallback("first clause is not MATCH");
  }
  if (first.patterns.size() != 1) {
    return fallback("multiple MATCH patterns");
  }
  const PathPattern& path = first.patterns.front();
  if (!path.steps.empty()) {
    return fallback("relationship pattern (path steps)");
  }
  if (path.head.variable.empty()) {
    return fallback("anonymous pattern head");
  }
  p.variable = path.head.variable;
  p.label = path.head.label;
  p.head = &path;

  // Inline pattern properties must be row-independent constants — the first
  // clause's input is the bootstrap row, so anything else (a function call,
  // a missing parameter) must keep legacy evaluation order.
  for (const auto& [key, expr] : path.head.properties) {
    if (expr == nullptr || !const_value(*expr, params_)) {
      return fallback("non-constant inline property '" + key + "'");
    }
  }
  const bool has_props = !path.head.properties.empty();

  // Gather the WHERE prefix as one conjunct list, in evaluation order.
  std::size_t ci = 1;
  std::vector<const Expr*> conjuncts;
  while (ci < query.clauses.size() &&
         query.clauses[ci].kind == Clause::Kind::kWhere) {
    flatten_and(query.clauses[ci].predicate.get(), conjuncts);
    ++ci;
  }
  p.tail_begin = ci;

  // Conjuncts up to the first unsafe one may be reordered and pushed into
  // the scan; the unsafe conjunct and everything after it keep their source
  // order so the same rows reach them as under the legacy engine (error
  // parity: a throwing conjunct must see exactly the legacy survivor set).
  std::size_t first_unsafe = conjuncts.size();
  for (std::size_t i = 0; i < conjuncts.size(); ++i) {
    if (!is_safe_expr(*conjuncts[i], p.variable, params_)) {
      first_unsafe = i;
      break;
    }
  }

  std::vector<std::optional<CmpShape>> shapes(conjuncts.size());
  for (std::size_t i = 0; i < conjuncts.size(); ++i) {
    shapes[i] = comparison_shape(*conjuncts[i], p.variable, params_, store);
  }

  const auto node_count = static_cast<double>(store.node_count());
  const bool real_label = !p.label.empty() && p.label != "EVENT";

  // ---- scan selection -------------------------------------------------------

  struct ScanChoice {
    ScanKind kind = ScanKind::kAllNodes;
    int precedence = 5;  // tie-break: lower wins at equal estimate
    graph::PropKeyId key = graph::kNoPropKey;
    std::string key_name;
    Value eq;
    std::int64_t lo = kInt64Min;
    std::int64_t hi = kInt64Max;
    double estimate = 0.0;
    std::optional<std::size_t> consumed;  // conjunct folded into the scan
    std::size_t pushed = 0;               // conjuncts that shaped the scan
  };
  std::vector<ScanChoice> choices;

  if (has_props) {
    // Legacy candidates() already narrows via inline props (hash index,
    // label, segment pruning, in its own precedence and output order) —
    // reproduce it verbatim instead of competing with it.
    ScanChoice c;
    c.kind = ScanKind::kPatternProps;
    c.precedence = 0;
    c.estimate = node_count;
    for (const auto& [key_name, expr] : path.head.properties) {
      const graph::PropKeyId key = store.prop_key_id(key_name);
      const Value want = *const_value(*expr, params_);
      graph::PropertyValue pv;
      if (want.is_bool()) pv = want.as_bool();
      else if (want.is_int()) pv = want.as_int();
      else if (want.is_double()) pv = want.as_number();
      else if (want.is_string()) pv = want.as_string();
      else continue;
      if (const auto bucket = store.index_count(key, pv)) {
        c.estimate = static_cast<double>(*bucket);
        break;
      }
    }
    if (c.estimate == node_count && real_label) {
      c.estimate = static_cast<double>(store.label_count(p.label));
    }
    choices.push_back(std::move(c));
  } else {
    // Hash-index equality: one conjunct becomes the whole scan. The
    // executor probes both the exact-typed bucket and the cross-typed
    // numeric bucket (int64 5 vs double 5.0 compare equal in WHERE but
    // hash separately), so consuming the conjunct is exact.
    for (std::size_t i = 0; i < first_unsafe; ++i) {
      if (!shapes[i] || shapes[i]->op != BinaryOp::kEq) continue;
      const CmpShape& s = *shapes[i];
      if (s.key == graph::kNoPropKey || !store.has_index(s.key)) continue;
      const Value& v = s.constant;
      double estimate = 0.0;
      if (v.is_bool()) {
        estimate = static_cast<double>(
            store.index_count(s.key, graph::PropertyValue(v.as_bool()))
                .value_or(0));
      } else if (v.is_string()) {
        estimate = static_cast<double>(
            store.index_count(s.key, graph::PropertyValue(v.as_string()))
                .value_or(0));
      } else if (v.is_number()) {
        const double d = v.as_number();
        estimate = static_cast<double>(
            store.index_count(s.key, graph::PropertyValue(d)).value_or(0));
        if (std::floor(d) == d) {
          estimate += static_cast<double>(
              store.index_count(s.key, graph::PropertyValue(clamp_to_int64(d)))
                  .value_or(0));
        }
      } else {
        continue;  // null / node / list equality never uses the index
      }
      ScanChoice c;
      c.kind = ScanKind::kIndexEq;
      c.precedence = 1;
      c.key = s.key;
      c.key_name = s.key_name;
      c.eq = s.constant;
      c.estimate = estimate;
      c.consumed = i;
      c.pushed = 1;
      choices.push_back(std::move(c));
    }

    // Ordered-index range scan: intersect every range conjunct on the key
    // into one [lo, hi] window. The conjuncts stay in the residual filter —
    // the index is the candidate source, the filter remains the authority
    // (see DESIGN.md §12 for the int64-typed-key assumption).
    std::map<graph::PropKeyId, std::pair<Bounds, std::size_t>> windows;
    std::map<graph::PropKeyId, std::string> window_names;
    for (std::size_t i = 0; i < first_unsafe; ++i) {
      if (!shapes[i]) continue;
      const CmpShape& s = *shapes[i];
      if (s.key == graph::kNoPropKey || !s.constant.is_number()) continue;
      auto& [bounds, contributors] = windows[s.key];
      if (apply_bound(bounds, s.op, s.constant)) {
        ++contributors;
        window_names[s.key] = s.key_name;
      }
    }
    for (const auto& [key, window] : windows) {
      const auto& [bounds, contributors] = window;
      if (!bounds.constrained) continue;
      if (store.has_ordered_index(key)) {
        ScanChoice c;
        c.kind = ScanKind::kRange;
        c.precedence = 2;
        c.key = key;
        c.key_name = window_names[key];
        c.lo = bounds.empty ? std::int64_t{1} : bounds.lo;
        c.hi = bounds.empty ? std::int64_t{0} : bounds.hi;
        c.pushed = contributors;
        if (bounds.empty) {
          c.estimate = 0.0;
        } else if (const auto stats = store.ordered_index_stats(key)) {
          const double span_lo =
              std::max(static_cast<double>(c.lo),
                       static_cast<double>(stats->min_value));
          const double span_hi =
              std::min(static_cast<double>(c.hi),
                       static_cast<double>(stats->max_value));
          if (span_lo > span_hi) {
            c.estimate = 0.0;
          } else {
            const double index_span =
                static_cast<double>(stats->max_value) -
                static_cast<double>(stats->min_value) + 1.0;
            c.estimate = std::min(
                node_count,
                node_count * ((span_hi - span_lo + 1.0) / index_span));
          }
        } else {
          c.estimate = 0.0;  // index exists but is empty
        }
        choices.push_back(std::move(c));
      }
      if (graph::SegmentManager* segments = store.segments()) {
        const auto& opts = segments->options();
        if (key == opts.lamport_key || key == opts.timestamp_key) {
          ScanChoice c;
          c.kind = ScanKind::kSegmentSkip;
          c.precedence = 3;
          c.key = key;
          c.key_name = window_names[key];
          c.lo = bounds.empty ? std::int64_t{1} : bounds.lo;
          c.hi = bounds.empty ? std::int64_t{0} : bounds.hi;
          c.pushed = contributors;
          double kept = 0.0;
          for (const auto& [begin, end] : segments->scan_ranges(key, c.lo, c.hi)) {
            kept += static_cast<double>(end - begin);
          }
          c.estimate = kept;
          choices.push_back(std::move(c));
        }
      }
    }

    if (real_label) {
      ScanChoice c;
      c.kind = ScanKind::kLabel;
      c.precedence = 4;
      c.estimate = static_cast<double>(store.label_count(p.label));
      choices.push_back(std::move(c));
    }
    {
      ScanChoice c;
      c.kind = ScanKind::kAllNodes;
      c.precedence = 5;
      c.estimate = node_count;
      choices.push_back(std::move(c));
    }
  }

  const ScanChoice* best = &choices.front();
  for (const ScanChoice& c : choices) {
    if (c.estimate < best->estimate ||
        (c.estimate == best->estimate && c.precedence < best->precedence)) {
      best = &c;
    }
  }
  p.scan = best->kind;
  p.scan_key = best->key;
  p.scan_key_name = best->key_name;
  p.scan_eq = best->eq;
  p.range_lo = best->lo;
  p.range_hi = best->hi;
  p.scan_estimate = best->estimate;
  p.predicates_pushed = best->pushed;
  p.check_label = real_label && p.scan != ScanKind::kLabel &&
                  p.scan != ScanKind::kPatternProps;

  // ---- residual filter ------------------------------------------------------

  std::vector<PlannedPredicate> reorderable;
  std::vector<PlannedPredicate> pinned;
  for (std::size_t i = 0; i < conjuncts.size(); ++i) {
    if (best->consumed && *best->consumed == i) continue;
    PlannedPredicate pp;
    pp.expr = conjuncts[i];
    pp.source_order = i;
    pp.reorderable = i < first_unsafe;
    if (shapes[i]) {
      const CmpShape& s = *shapes[i];
      const bool interned_eq =
          (s.op == BinaryOp::kEq || s.op == BinaryOp::kNeq) &&
          s.constant.is_string() && s.key != graph::kNoPropKey &&
          store.interned_distinct(s.key) > 0;
      pp.key = s.key;
      pp.key_name = s.key_name;
      pp.op = s.op;
      pp.constant = s.constant;
      pp.flipped = s.flipped;
      if (interned_eq) {
        pp.kind = PlannedPredicate::Kind::kInternedEq;
        const double eq_frac =
            1.0 / static_cast<double>(
                      std::max<std::size_t>(1, store.interned_distinct(s.key)));
        pp.selectivity = s.op == BinaryOp::kEq ? eq_frac : 1.0 - eq_frac;
      } else {
        pp.kind = PlannedPredicate::Kind::kPropCompare;
        switch (s.op) {
          case BinaryOp::kEq: {
            pp.selectivity = 0.10;
            if (s.key != graph::kNoPropKey && node_count > 0 &&
                s.constant.is_string()) {
              if (const auto bucket = store.index_count(
                      s.key, graph::PropertyValue(s.constant.as_string()))) {
                pp.selectivity = static_cast<double>(*bucket) / node_count;
              }
            }
            break;
          }
          case BinaryOp::kNeq: pp.selectivity = 0.90; break;
          default: pp.selectivity = 0.33; break;
        }
      }
    } else {
      pp.kind = PlannedPredicate::Kind::kGeneric;
      pp.selectivity = pp.reorderable ? 0.60 : 1.0;
    }
    (pp.reorderable ? reorderable : pinned).push_back(std::move(pp));
  }
  std::stable_sort(reorderable.begin(), reorderable.end(),
                   [](const PlannedPredicate& a, const PlannedPredicate& b) {
                     if (a.selectivity != b.selectivity) {
                       return a.selectivity < b.selectivity;
                     }
                     return a.source_order < b.source_order;
                   });
  p.predicates = std::move(reorderable);
  for (auto& pp : pinned) p.predicates.push_back(std::move(pp));

  p.estimated_rows = p.scan_estimate;
  for (const PlannedPredicate& pp : p.predicates) {
    p.estimated_rows *= pp.selectivity;
  }

  // ---- projection / limit pushdown ------------------------------------------

  if (p.tail_begin + 1 == query.clauses.size()) {
    const Clause& tail = query.clauses[p.tail_begin];
    bool simple = tail.kind == Clause::Kind::kReturn && !tail.distinct &&
                  tail.order_by.empty();
    for (const auto& item : tail.projections) {
      if (!simple) break;
      simple = item.expr != nullptr &&
               item.expr->kind != Expr::Kind::kStar &&
               is_safe_expr(*item.expr, p.variable, params_);
    }
    if (simple && !tail.projections.empty()) {
      p.projection = &tail;
      p.limit = tail.limit;
      p.tail_begin = query.clauses.size();
    }
  }

  p.planned = true;
  return p;
}

// ---------------------------------------------------------------------------
// EXPLAIN
// ---------------------------------------------------------------------------

PlanReport describe_plan(const Plan& plan) {
  PlanReport report;
  report.planned = plan.planned;
  report.fallback_reason = plan.fallback_reason;
  if (!plan.planned) return report;

  PlanOpReport scan;
  scan.op = "scan";
  std::string detail(scan_kind_name(plan.scan));
  switch (plan.scan) {
    case ScanKind::kLabel:
      detail += " " + plan.label;
      break;
    case ScanKind::kIndexEq:
      detail += " " + plan.scan_key_name + " = " + value_to_text(plan.scan_eq);
      break;
    case ScanKind::kRange:
    case ScanKind::kSegmentSkip:
      detail += " " + plan.scan_key_name + " in " +
                bounds_to_text(plan.range_lo, plan.range_hi);
      break;
    case ScanKind::kPatternProps: {
      detail += " {";
      if (plan.head != nullptr) {
        for (std::size_t i = 0; i < plan.head->head.properties.size(); ++i) {
          if (i > 0) detail += ", ";
          detail += plan.head->head.properties[i].first;
        }
      }
      detail += '}';
      if (!plan.label.empty() && plan.label != "EVENT") {
        detail += " :" + plan.label;
      }
      break;
    }
    case ScanKind::kAllNodes:
      break;
  }
  if (plan.check_label) detail += " + label-check :" + plan.label;
  if (plan.predicates_pushed > 0) {
    detail += " (" + std::to_string(plan.predicates_pushed) +
              " predicate" + (plan.predicates_pushed == 1 ? "" : "s") +
              " pushed)";
  }
  scan.detail = std::move(detail);
  scan.estimated_rows = plan.scan_estimate;
  report.ops.push_back(std::move(scan));

  double running = plan.scan_estimate;
  for (const PlannedPredicate& pp : plan.predicates) {
    running *= pp.selectivity;
    PlanOpReport op;
    op.op = "filter";
    std::string kind;
    switch (pp.kind) {
      case PlannedPredicate::Kind::kInternedEq: kind = "interned-eq"; break;
      case PlannedPredicate::Kind::kPropCompare: kind = "in-place"; break;
      case PlannedPredicate::Kind::kGeneric: kind = "generic"; break;
    }
    if (!pp.reorderable) kind += ", pinned";
    op.detail = expr_to_string(*pp.expr) + "  [" + kind + "]";
    op.estimated_rows = running;
    report.ops.push_back(std::move(op));
  }

  if (plan.projection != nullptr) {
    PlanOpReport op;
    op.op = "project";
    std::string d = "RETURN ";
    for (std::size_t i = 0; i < plan.projection->projections.size(); ++i) {
      if (i > 0) d += ", ";
      d += plan.projection->projections[i].alias;
    }
    if (plan.limit) d += " LIMIT " + std::to_string(*plan.limit);
    op.detail = std::move(d);
    op.estimated_rows = running;
    report.ops.push_back(std::move(op));
  }

  if (plan.query != nullptr && plan.tail_begin < plan.query->clauses.size()) {
    PlanOpReport op;
    op.op = "tail";
    std::string d = "legacy:";
    for (std::size_t i = plan.tail_begin; i < plan.query->clauses.size(); ++i) {
      d += " " + clause_name(plan.query->clauses[i]);
    }
    op.detail = std::move(d);
    report.ops.push_back(std::move(op));
  }
  return report;
}

std::string PlanReport::to_text(bool include_timing) const {
  if (!planned) {
    return "plan: fallback — " + fallback_reason + " (legacy pipeline)\n";
  }
  std::string out = "plan:\n";
  for (const PlanOpReport& op : ops) {
    out += "  " + op.op + "[" + op.detail + "]";
    if (op.estimated_rows >= 0) out += " est=" + format_rows(op.estimated_rows);
    if (op.actual_rows >= 0) out += " act=" + format_rows(op.actual_rows);
    if (include_timing && op.seconds >= 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " t=%.3fms", op.seconds * 1e3);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace horus::query
