#include "query/evaluator.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "query/eval_internal.h"
#include "query/exec.h"
#include "query/parser.h"

namespace horus::query {

// ---------------------------------------------------------------------------
// Value helpers
// ---------------------------------------------------------------------------

std::string Value::to_display_string() const {
  if (is_null()) return "null";
  if (const auto* b = std::get_if<bool>(&v_)) return *b ? "true" : "false";
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v_)) return std::to_string(*d);
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  if (const auto* n = std::get_if<NodeRef>(&v_)) {
    return "#node" + std::to_string(n->id);
  }
  const auto& list = std::get<ValueList>(v_);
  std::string out = "[";
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (i > 0) out += ", ";
    out += list[i].to_display_string();
  }
  out += ']';
  return out;
}

int compare_values(const Value& a, const Value& b) {
  if (a.is_number() && b.is_number()) {
    const double x = a.as_number();
    const double y = b.as_number();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.is_string() && b.is_string()) {
    const int c = a.as_string().compare(b.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.is_bool() && b.is_bool()) {
    return static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
  }
  if (a.is_node() && b.is_node()) {
    const auto x = a.as_node().id;
    const auto y = b.as_node().id;
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.is_null() && b.is_null()) return 0;
  return -2;
}

// ---------------------------------------------------------------------------
// QueryEngine
// ---------------------------------------------------------------------------

void QueryEngine::register_procedure(std::string name, ProcedureDef def) {
  procedures_.insert_or_assign(std::move(name), std::move(def));
}

QueryResult QueryEngine::run(std::string_view text,
                             const QueryParams& params) const {
  static obs::Histogram& parse_seconds = obs::Registry::global().histogram(
      "horus_query_parse_seconds", "Query text -> AST latency");
  const auto parse_start = std::chrono::steady_clock::now();
  const Query query = parse_query(text);
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - parse_start)
                             .count();
  parse_seconds.observe(elapsed);
  if (options_.profile != nullptr) options_.profile->add_parse(elapsed);
  return run(query, params);
}

QueryResult QueryEngine::run(const Query& query,
                             const QueryParams& params) const {
  return run_impl(query, params, nullptr);
}

ExplainResult QueryEngine::explain(std::string_view text,
                                   const QueryParams& params) const {
  ExplainResult out;
  const Query query = parse_query(text);
  out.result = run_impl(query, params, &out.report);
  return out;
}

QueryResult QueryEngine::run_impl(const Query& query, const QueryParams& params,
                                  PlanReport* report) const {
  // Planner counters, surfaced by `horus stats`.
  static obs::Counter& plans_built = obs::Registry::global().counter(
      "horus_query_plans_built_total",
      "Queries lowered into a logical plan (planned or fallback)");
  static obs::Counter& plan_fallbacks = obs::Registry::global().counter(
      "horus_query_plan_fallbacks_total",
      "Queries the planner declined, executed by the legacy pipeline");
  static obs::Counter& predicates_pushed = obs::Registry::global().counter(
      "horus_query_predicates_pushed_total",
      "WHERE conjuncts pushed into planned scans/filters");
  static obs::Counter& segments_pruned_total = obs::Registry::global().counter(
      "horus_query_plan_segments_pruned_total",
      "Sealed segments skipped by planned range scans via summaries");

  const internal::Evaluator ev(graph_, procedures_, params, options_);
  internal::RowSet rows;
  bool planned_path = false;

  // EXPLAIN always plans (to show why a query fell back) even when the
  // planner is disabled; the disabled planner never *executes* the plan.
  if (options_.use_planner || report != nullptr) {
    const auto plan_start = std::chrono::steady_clock::now();
    const Plan plan = Planner(graph_, params).plan(query);
    const double plan_elapsed = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    plan_start)
                                    .count();
    plans_built.inc();
    if (!plan.planned) plan_fallbacks.inc();
    if (plan.predicates_pushed > 0) predicates_pushed.inc(plan.predicates_pushed);
    if (options_.profile != nullptr) {
      options_.profile->add_plan(
          plan_elapsed,
          plan.planned ? static_cast<std::uint64_t>(plan.scan_estimate) : 0);
    }
    if (report != nullptr) *report = describe_plan(plan);

    if (plan.planned && options_.use_planner) {
      ExecCounters counters;
      rows = execute_plan(ev, plan, report, &counters);
      if (counters.segments_pruned > 0) {
        segments_pruned_total.inc(counters.segments_pruned);
      }
      if (plan.tail_begin < query.clauses.size()) {
        rows = ev.run_from(query, plan.tail_begin, std::move(rows));
      }
      planned_path = true;
      if (report != nullptr && options_.profile != nullptr) {
        options_.profile->add_plan_text(report->to_text(/*include_timing=*/true));
      }
    }
  }
  if (!planned_path) rows = ev.run(query);

  QueryResult result;
  result.columns = rows.columns;
  result.rows = rows.rows;
  if (options_.guard != nullptr && options_.guard->stopped()) {
    result.truncated = true;
    result.truncated_reason = options_.guard->reason();
    // A guard tripped before the first clause produced anything leaves only
    // the pipeline's bootstrap row (no columns) — not a real partial row.
    if (result.columns.empty()) result.rows.clear();
    // One bump per degraded query, labeled by which guardrail fired —
    // `horus stats` exposes these as horus_query_limit_hits_total.
    static obs::Family<obs::Counter>& limit_hits =
        obs::Registry::global().counters(
            "horus_query_limit_hits_total",
            "Queries cut short by a guardrail, by tripped limit");
    limit_hits.with({{"limit", result.truncated_reason}}).inc();
  }
  return result;
}

std::string QueryResult::to_table() const {
  std::vector<std::size_t> widths(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    widths[c] = columns[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<std::string> line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line.push_back(row[c].to_display_string());
      if (c < widths.size()) widths[c] = std::max(widths[c], line[c].size());
    }
    rendered.push_back(std::move(line));
  }
  std::string out;
  auto add_row = [&](const std::vector<std::string>& cells) {
    out += '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out += ' ';
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out += cell;
      out.append(widths[c] - cell.size() + 1, ' ');
      out += '|';
    }
    out += '\n';
  };
  add_row(columns);
  out += '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out.append(widths[c] + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& line : rendered) add_row(line);
  return out;
}

}  // namespace horus::query
