// Query planner: lowers a MATCH/WHERE query prefix into a typed logical
// plan — scan → filter → (project → limit) — that the batch executor
// (src/query/exec.h) runs column-at-a-time. Planning is deliberately
// conservative: any shape the planner cannot prove row-identical to the
// tuple-at-a-time evaluator becomes a fallback (Plan::planned == false) and
// the legacy pipeline runs instead. tests/plan_differential_test.cpp holds
// planned execution to row-for-row equality with the legacy path.
//
// What the planner does:
//  * Scan selection — picks the cheapest access path for the MATCH head by
//    estimated candidate count: hash-index equality lookup, ordered-index
//    range scan, segment-summary range pruning, label scan, or full scan.
//    Index-backed scans re-sort candidates into ascending node-id order so
//    downstream rows match the legacy full-scan order exactly.
//  * Predicate pushdown — equality and range conjuncts on indexed keys move
//    out of the WHERE filter and into the scan; range conjuncts on the same
//    key intersect into one [lo, hi] window.
//  * Conjunct reordering — remaining WHERE conjuncts are ranked by estimated
//    selectivity (cheap per-column stats: index bucket sizes, interned-pool
//    cardinality) so the cheapest, most selective filters run first.
//    Conjuncts that can throw (unknown functions, missing parameters,
//    arithmetic) are never moved ahead of their source position, preserving
//    the legacy engine's error behavior.
//  * Limit/projection pushdown — a trailing plain RETURN (no aggregates, no
//    ORDER BY, no DISTINCT) folds into the executor so a LIMIT stops the
//    scan early.
//
// A Plan borrows the Query AST and the parameter map: both must outlive it.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/causal_query.h"
#include "query/ast.h"
#include "query/value.h"

namespace horus::query {

/// Access path for the MATCH head's candidate stream.
enum class ScanKind {
  kAllNodes,      // full scan, ascending node id
  kLabel,         // label index (insertion order == ascending id)
  kIndexEq,       // hash index equality bucket, re-sorted ascending
  kRange,         // ordered index [lo, hi], re-sorted ascending
  kSegmentSkip,   // full scan minus segments excluded by VC summaries
  kPatternProps,  // inline pattern properties via the legacy candidates()
};

[[nodiscard]] std::string_view scan_kind_name(ScanKind kind) noexcept;

/// One WHERE conjunct after planning, in execution order.
struct PlannedPredicate {
  enum class Kind {
    kInternedEq,   // prop ==/<> string constant over an interned column
    kPropCompare,  // prop <cmp> constant, compared in place
    kGeneric,      // anything else: full expression evaluation per row
  };
  Kind kind = Kind::kGeneric;
  const Expr* expr = nullptr;       // the conjunct (borrowed from the AST)
  graph::PropKeyId key = graph::kNoPropKey;  // kInternedEq / kPropCompare
  std::string key_name;             // for EXPLAIN
  BinaryOp op = BinaryOp::kEq;      // kPropCompare: comparison operator
  Value constant;                   // kInternedEq / kPropCompare: rhs value
  bool flipped = false;             // constant was on the left
  double selectivity = 1.0;         // estimated survivor fraction
  bool reorderable = true;          // false: must keep source order
  std::size_t source_order = 0;     // position among the original conjuncts
};

/// Typed logical plan for a query's MATCH/WHERE prefix.
struct Plan {
  bool planned = false;
  std::string fallback_reason;  // set when !planned

  // Scan.
  ScanKind scan = ScanKind::kAllNodes;
  std::string variable;              // MATCH head variable
  std::string label;                 // pattern label ("" or "EVENT" = any)
  const PathPattern* head = nullptr;       // kPatternProps: legacy candidates
  graph::PropKeyId scan_key = graph::kNoPropKey;
  std::string scan_key_name;
  Value scan_eq;                     // kIndexEq: the equality constant
  std::int64_t range_lo = std::numeric_limits<std::int64_t>::min();
  std::int64_t range_hi = std::numeric_limits<std::int64_t>::max();
  double scan_estimate = 0.0;        // estimated candidate count
  /// True when the scan does not itself guarantee the pattern label and a
  /// residual integer label-id check is required per candidate.
  bool check_label = false;

  // Filter.
  std::vector<PlannedPredicate> predicates;  // execution order
  std::size_t predicates_pushed = 0;  // conjuncts consumed by the scan

  // Tail hand-off: clauses [tail_begin, end) run on the legacy pipeline.
  std::size_t tail_begin = 0;
  const Query* query = nullptr;  // the planned statement (borrowed)

  // Projection/limit pushdown (only when the tail is one plain RETURN).
  const Clause* projection = nullptr;
  std::optional<std::int64_t> limit;

  /// Scan estimate times the product of residual selectivities — the
  /// service layer compares this against its admission threshold when
  /// degraded.
  double estimated_rows = 0.0;
};

/// One operator line of an EXPLAIN report.
struct PlanOpReport {
  std::string op;       // e.g. "scan", "filter", "project"
  std::string detail;   // e.g. "index-eq eventId = \"E17\""
  double estimated_rows = -1.0;  // < 0: no estimate
  double actual_rows = -1.0;     // < 0: not executed
  double seconds = -1.0;         // < 0: not timed
};

/// EXPLAIN output: the chosen plan (or the fallback reason), one line per
/// operator, with estimated and — after execution — actual row counts.
struct PlanReport {
  bool planned = false;
  std::string fallback_reason;
  std::vector<PlanOpReport> ops;

  /// Renders the report. Without timings the text is deterministic for a
  /// given graph + query — the golden-plan snapshot tests rely on that.
  [[nodiscard]] std::string to_text(bool include_timing = false) const;
};

/// Builds the skeleton report (estimates only) for a plan.
[[nodiscard]] PlanReport describe_plan(const Plan& plan);

/// Renders an expression as query text (best effort, for EXPLAIN details).
[[nodiscard]] std::string expr_to_string(const Expr& e);

class Planner {
 public:
  /// Plans against a concrete graph and parameter set; parameters are
  /// treated as constants, so planning happens per execution, not per parse.
  Planner(const ExecutionGraph& graph, const QueryParams& params)
      : graph_(graph), params_(params) {}

  /// Never throws: unplannable queries come back with planned == false and
  /// a human-readable fallback_reason.
  [[nodiscard]] Plan plan(const Query& query) const;

 private:
  const ExecutionGraph& graph_;
  const QueryParams& params_;
};

}  // namespace horus::query
