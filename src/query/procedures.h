// The Horus procedures exposed to the query language (Section V):
//
//   CALL horus.happensBefore(a, b) YIELD result
//     Q1 — one vector-clock comparison.
//
//   CALL horus.getCausalGraph(a, b, onlyLogs) YIELD node
//     Q2 — LC-range bound + VC pruning; yields one row per node of the
//     causal sub-graph, in Lamport (causal) order.
//
//   CALL horus.getCausalEdges(a, b) YIELD from, to
//     The E'' edge set of Q2 — one row per induced edge of the causal
//     sub-graph (for rendering the paths, not just their nodes).
//
// Register them on a QueryEngine with register_horus_procedures().
#pragma once

#include "core/causal_query.h"
#include "core/execution_graph.h"
#include "core/logical_clocks.h"
#include "query/evaluator.h"

namespace horus::query {

/// Registers horus.happensBefore and horus.getCausalGraph. The engine keeps
/// references; `graph` and `clocks` must outlive it. `options` is the
/// parallelism knob handed to every CausalQueryEngine the procedures build
/// (the procedures themselves are thread-safe, so they compose with a
/// parallel QueryEngine).
void register_horus_procedures(QueryEngine& engine, const ExecutionGraph& graph,
                               const ClockTable& clocks,
                               QueryOptions options = {});

}  // namespace horus::query
