// Batch executor for planned queries (src/query/planner.h): runs the
// scan → filter → (project → limit) prefix of a Plan column-at-a-time and
// hands any remaining clauses back to the legacy pipeline via
// Evaluator::run_from. Row-for-row identical to the tuple-at-a-time
// evaluator — tests/plan_differential_test.cpp is the oracle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "query/eval_internal.h"
#include "query/planner.h"

namespace horus::query {

/// Chunked bump allocator scoped to one query execution. Filter stages
/// stream candidate node ids through arena-backed batches instead of
/// allocating a Value per row; reset() recycles every chunk at once.
class ChunkedArena {
 public:
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  ChunkedArena() = default;

  /// Uninitialized storage for `n` elements of a trivially-destructible T,
  /// aligned for T. Valid until reset() or destruction.
  template <typename T>
  [[nodiscard]] T* alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(alloc_bytes(n * sizeof(T), alignof(T)));
  }

  /// Recycles all chunks without releasing them to the allocator.
  void reset() noexcept {
    current_ = 0;
    offset_ = 0;
  }

  [[nodiscard]] std::size_t chunks_allocated() const noexcept {
    return chunks_.size();
  }
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* alloc_bytes(std::size_t bytes, std::size_t align);

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // chunk being filled
  std::size_t offset_ = 0;   // next free byte in it
};

/// Counters the engine folds into the obs registry after execution.
struct ExecCounters {
  std::uint64_t segments_pruned = 0;
};

/// Executes the planned prefix. `plan.planned` must be true. When `report`
/// is non-null, fills in actual row counts and per-operator timings on the
/// ops produced by describe_plan (same op order). The returned RowSet is
/// the planned prefix's output: the final result when the plan absorbed the
/// projection, otherwise the MATCH/WHERE row stream for
/// Evaluator::run_from(query, plan.tail_begin, ...).
[[nodiscard]] internal::RowSet execute_plan(const internal::Evaluator& ev,
                                            const Plan& plan,
                                            PlanReport* report,
                                            ExecCounters* counters);

}  // namespace horus::query
